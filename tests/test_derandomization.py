"""Tests for the Discussion-section derandomization calculator."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.derandomization import (
    classify_gap,
    ghk_deterministic_upper,
    implied_nd_lower_bound,
    panconesi_srinivasan_nd,
)
from repro.core.theory import deterministic_prediction, randomized_prediction


class TestBounds:
    def test_ps_bound_grows_subpolynomially(self):
        for n in (2**10, 2**20, 2**40):
            nd = panconesi_srinivasan_nd(n)
            assert nd < n**0.5
        # superlogarithmic once sqrt(log n) beats (loglog n)^2
        assert panconesi_srinivasan_nd(2**64) > math.log2(2**64)

    def test_ghk_upper_dominates_rand(self):
        assert ghk_deterministic_upper(10, 2**20) >= 10

    def test_ghk_with_explicit_nd(self):
        value = ghk_deterministic_upper(5, 2**16, nd_rounds=100)
        assert value == 5 * 100 + 5 * 16**2


class TestImpliedNd:
    def test_paper_family_implies_nothing(self):
        """Pi_i gaps are Theta(log/loglog): far below the log^2 bar."""
        for level in (1, 2, 3):
            n = 2**20
            det = deterministic_prediction(level, n)
            rand = randomized_prediction(level, n)
            assert implied_nd_lower_bound(det, rand, n) < 0

    def test_huge_gap_would_imply_bound(self):
        n = 2**20
        bound = implied_nd_lower_bound(10**6, 1, n)
        assert bound > 0

    def test_rejects_zero_rand(self):
        with pytest.raises(ValueError):
            implied_nd_lower_bound(5, 0, 100)


class TestClassification:
    def test_no_gap(self):
        assert classify_gap(10, 10, 2**16).kind == "none"

    def test_paper_regime_is_subexponential(self):
        n = 2**20
        result = classify_gap(
            deterministic_prediction(2, n), randomized_prediction(2, n), n
        )
        assert result.kind == "subexponential"
        assert not result.implies_nd_bound()

    def test_sinkless_regime_is_exponential_scale(self):
        n = 2**64
        det = math.log2(n)
        rand = math.log2(math.log2(n))
        result = classify_gap(det * 10**6, rand, n)
        assert result.kind in ("superlog2", "exponential-scale")
        assert result.implies_nd_bound()

    @given(st.integers(4, 2**30), st.floats(1, 1e6), st.floats(1, 1e6))
    @settings(max_examples=50, deadline=None)
    def test_classification_total(self, n, det, rand):
        result = classify_gap(det, rand, n)
        assert result.kind in (
            "none",
            "subexponential",
            "superlog2",
            "exponential-scale",
        )
        assert result.ratio == pytest.approx(det / rand)
