"""Locality cross-checks: decisions are functions of the metered views.

The harness reports, per node, the view radius the node consulted.
These tests re-run the per-node decision procedures on the *induced
subgraph of exactly that ball* and demand the same outcome — evidence
that the accounting is honest: no solver decision uses information
from outside the radius it was charged for.
"""

from __future__ import annotations

import random

import pytest

from repro.gadgets import GadgetScope, LogGadgetFamily, build_gadget, run_prover
from repro.generators import random_regular
from repro.local import Instance, bfs_distances, induced_subgraph
from repro.local.identifiers import IdAssignment, sequential_ids
from repro.problems import DeterministicSinklessSolver
from repro.problems.sinkless_solvers import anchor_scan


class TestAnchorScanLocality:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_scan_reproducible_inside_its_ball(self, seed):
        graph = random_regular(48, 3, random.Random(seed))
        ids = sequential_ids(48)
        for v in list(graph.nodes())[::5]:
            scan = anchor_scan(graph, ids, v, 3)
            ball = bfs_distances(graph, v, max_radius=scan.radius + 1)
            sub, mapping = induced_subgraph(graph, ball)
            sub_ids = IdAssignment(
                [ids.of(orig) for orig in sorted(ball)]
            )
            local = anchor_scan(sub, sub_ids, mapping[v], 3)
            assert local.radius == scan.radius
            assert local.kind == scan.kind
            if scan.claim_tail is not None:
                # the claimed outgoing half-edge maps to the same edge
                assert local.claim_tail.node == mapping[scan.claim_tail.node]
                assert local.claim_tail.port == scan.claim_tail.port

    def test_scan_radius_never_exceeds_charge(self):
        """The solver charges every node at least its scan radius."""
        graph = random_regular(32, 3, random.Random(7))
        instance = Instance.simple(graph)
        result = DeterministicSinklessSolver().solve(instance)
        for v in graph.nodes():
            scan = anchor_scan(graph, instance.ids, v, 3)
            assert result.node_radius[v] >= scan.radius


class TestProverLocality:
    def test_prover_depends_only_on_component(self):
        """V's outputs on a gadget are identical when the gadget is
        embedded next to unrelated components."""
        from repro.generators import disjoint_union
        from repro.lcl import Labeling
        from repro.local import HalfEdge

        built = build_gadget(2, 3)
        noise = random_regular(10, 3, random.Random(1))
        combined = disjoint_union(built.graph, noise)
        inputs = Labeling(combined)
        for v in built.graph.nodes():
            inputs.set_node(v, built.inputs.node(v))
            for port in range(built.graph.degree(v)):
                inputs.set_half(
                    HalfEdge(v, port), built.inputs.half_at(v, port)
                )
        scope_alone = GadgetScope(built.graph, built.inputs)
        scope_embedded = GadgetScope(combined, inputs)
        component = sorted(built.graph.nodes())
        alone = run_prover(scope_alone, component, 2, combined.num_nodes)
        embedded = run_prover(scope_embedded, component, 2, combined.num_nodes)
        assert alone.outputs == embedded.outputs
        assert alone.is_valid and embedded.is_valid

    def test_prover_radius_covers_component(self):
        """On valid gadgets the charged radius lets each node see the
        entire gadget (which is what certifying validity requires)."""
        family = LogGadgetFamily(3)
        built = family.member_with_height(5)
        scope = GadgetScope(built.graph, built.inputs)
        component = sorted(built.graph.nodes())
        result = run_prover(scope, component, 3, built.num_nodes)
        for v in component[:: max(len(component) // 17, 1)]:
            dist = bfs_distances(built.graph, v)
            eccentricity = max(dist.values())
            assert result.node_radius[v] >= eccentricity
