"""Tests for the polynomial cover-free families behind Linial reduction."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.problems.linial import (
    is_prime,
    next_prime,
    polynomial_family_params,
    polynomial_set,
    reduce_color,
    reduction_schedule,
)
from repro.util import log_star


class TestPrimes:
    def test_small_primes(self):
        primes = [x for x in range(30) if is_prime(x)]
        assert primes == [2, 3, 5, 7, 11, 13, 17, 19, 23, 29]

    def test_next_prime(self):
        assert next_prime(1) == 2
        assert next_prime(14) == 17
        assert next_prime(17) == 17
        assert next_prime(90) == 97


class TestFamilyParams:
    @given(st.integers(2, 10**7), st.integers(1, 6))
    @settings(max_examples=60, deadline=None)
    def test_constraints_hold(self, k, delta):
        q, d = polynomial_family_params(k, delta)
        assert is_prime(q)
        assert q ** (d + 1) >= k
        assert q > delta * d

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            polynomial_family_params(0, 2)
        with pytest.raises(ValueError):
            polynomial_family_params(5, 0)


class TestPolynomialSets:
    def test_set_size_is_q(self):
        assert len(polynomial_set(3, 5, 2)) == 5

    def test_distinct_colors_small_intersection(self):
        q, d = 7, 2
        for c1 in range(20):
            for c2 in range(20):
                if c1 == c2:
                    continue
                overlap = set(polynomial_set(c1, q, d)) & set(polynomial_set(c2, q, d))
                assert len(overlap) <= d

    def test_points_in_ground_set(self):
        q, d = 11, 3
        for c in (0, 5, q ** (d + 1) - 1):
            assert all(0 <= p < q * q for p in polynomial_set(c, q, d))


class TestReduceColor:
    @given(st.integers(2, 2000), st.lists(st.integers(0, 1999), max_size=3))
    @settings(max_examples=80, deadline=None)
    def test_new_color_distinct_from_neighbors(self, color, neighbors):
        neighbors = [c for c in neighbors if c != color]
        q, d = polynomial_family_params(2000, max(len(neighbors), 1))
        new = reduce_color(color, neighbors, q, d)
        new_neighbors = [reduce_color(c, [color], q, d) for c in neighbors]
        # Distinctness of the chosen points is only guaranteed against
        # the neighbors' *sets*; check the defining property instead:
        for other in neighbors:
            assert new not in polynomial_set(other, q, d) or new in polynomial_set(
                color, q, d
            )
        assert 0 <= new < q * q

    def test_rejects_improper_input(self):
        with pytest.raises(ValueError):
            reduce_color(5, [5], 7, 2)

    def test_full_round_on_proper_coloring(self):
        # simulate one synchronous reduction round on a triangle
        colors = {0: 11, 1: 23, 2: 37}
        q, d = polynomial_family_params(64, 2)
        new = {
            v: reduce_color(colors[v], [colors[u] for u in colors if u != v], q, d)
            for v in colors
        }
        assert len(set(new.values())) == 3


class TestSchedule:
    def test_palette_strictly_shrinks(self):
        schedule = reduction_schedule(10**8, 2)
        palettes = [q * q for q, d in schedule]
        assert all(a > b for a, b in zip(palettes, palettes[1:]))
        assert palettes[-1] < 10**8

    def test_length_tracks_log_star(self):
        for k in (10, 10**3, 10**6, 10**12):
            schedule = reduction_schedule(k, 2)
            assert len(schedule) <= log_star(k) + 3

    def test_terminal_palette_constant_for_delta(self):
        small = reduction_schedule(10**4, 3)[-1]
        large = reduction_schedule(10**10, 3)[-1]
        assert small[0] ** 2 == large[0] ** 2  # same fixed point
