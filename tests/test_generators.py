"""Tests for the instance generators (regular graphs, girth surgery)."""

from __future__ import annotations

import random

import pytest

from repro.generators import (
    configuration_model,
    cubic_instance,
    lift_girth,
    padded_hard_instance,
    random_regular,
)
from repro.local import girth


class TestRegularGraphs:
    @pytest.mark.parametrize("n,d", [(10, 3), (20, 4), (16, 3)])
    def test_random_regular_degrees(self, n, d):
        graph = random_regular(n, d, random.Random(0))
        assert all(graph.degree(v) == d for v in graph.nodes())
        assert graph.is_simple()

    def test_odd_product_rejected(self):
        with pytest.raises(ValueError):
            configuration_model(5, 3, random.Random(0))

    def test_configuration_model_allows_multigraph(self):
        graph = configuration_model(4, 3, random.Random(2))
        assert all(graph.degree(v) == 3 for v in graph.nodes())

    def test_lift_girth_removes_short_cycles(self):
        rng = random.Random(4)
        graph = random_regular(64, 3, rng)
        lifted = lift_girth(graph, 6, rng)
        assert girth(lifted) >= 6
        assert all(lifted.degree(v) == 3 for v in lifted.nodes())

    def test_lift_girth_noop_when_already_high(self):
        from repro.generators import cycle

        graph = cycle(12)
        lifted = lift_girth(graph, 5, random.Random(0))
        assert girth(lifted) == 12


class TestInstanceFactories:
    def test_cubic_instance_shape(self):
        instance = cubic_instance(33, seed=1)  # odd n rounds up
        assert instance.graph.num_nodes == 34
        assert instance.graph.max_degree == 3
        assert instance.rng is not None

    def test_cubic_instance_seeded(self):
        a = cubic_instance(32, seed=5)
        b = cubic_instance(32, seed=5)
        assert [a.ids.of(v) for v in a.graph.nodes()] == [
            b.ids.of(v) for v in b.graph.nodes()
        ]

    def test_padded_hard_instance_level1_passthrough(self):
        from repro.core import build_family

        pi1 = build_family(1)[0]
        instance = padded_hard_instance(pi1, 64, 0)
        assert instance.graph.num_nodes == 64
        assert instance.inputs is None
