"""Tests for the Section 4.6 node-edge lowering (Figures 7 and 8)."""

from __future__ import annotations

import random

import pytest

from repro.gadgets import (
    ERROR,
    GADOK,
    GadgetScope,
    build_gadget,
    corrupt,
    run_prover,
)
from repro.gadgets.ne_encoding import (
    CHAIN_SPECS,
    ChainToken,
    NeHalfOutput,
    NeNodeOutput,
    compile_ne_proof,
    verify_ne_proof,
)
from repro.gadgets.labels import LCHILD, RIGHT


def _prove_and_compile(graph, inputs, delta=3):
    scope = GadgetScope(graph, inputs)
    component = sorted(graph.nodes())
    prover = run_prover(scope, component, delta, graph.num_nodes)
    node_out, half_out = compile_ne_proof(scope, component, prover.outputs)
    return scope, component, prover, node_out, half_out


class TestCompileOnValidGadget:
    def test_all_gadok_and_accepted(self):
        built = build_gadget(3, 4)
        scope, component, prover, node_out, half_out = _prove_and_compile(
            built.graph, built.inputs
        )
        assert prover.all_ok()
        assert all(out.psi == GADOK for out in node_out.values())
        assert all(out.tokens == frozenset() for out in node_out.values())
        assert verify_ne_proof(scope, component, node_out, half_out) == []

    def test_summaries_replicated(self):
        built = build_gadget(2, 3)
        _scope, component, _prover, node_out, half_out = _prove_and_compile(
            built.graph, built.inputs, delta=2
        )
        for (v, _port), half in half_out.items():
            assert half.summary == node_out[v].summary


class TestCorruptedProofsAccepted:
    @pytest.mark.parametrize(
        "name",
        [
            "wrong-index",
            "fake-port",
            "missing-port",
            "color-clash",
            "swapped-children",
            "dropped-horizontal",
            "detached-subgadget",
        ],
    )
    def test_each_proof_ne_consistent(self, name):
        built = build_gadget(3, 4)
        corruption = corrupt(built, name)
        scope, component, prover, node_out, half_out = _prove_and_compile(
            corruption.graph, corruption.inputs
        )
        assert not prover.is_valid
        violations = verify_ne_proof(scope, component, node_out, half_out)
        assert violations == [], [str(v) for v in violations[:5]]

    def test_color_clash_emits_figure7_witness(self):
        built = build_gadget(3, 4)
        corruption = corrupt(built, "color-clash")
        _scope, _component, _prover, node_out, half_out = _prove_and_compile(
            corruption.graph, corruption.inputs
        )
        witnesses = [v for v, out in node_out.items() if out.dup_color is not None]
        assert witnesses
        marks = [h for h in half_out.values() if h.dup_mark is not None]
        assert len(marks) == 2 * len(witnesses)

    def test_swapped_children_emits_figure8_chain(self):
        built = build_gadget(3, 4)
        corruption = corrupt(built, "swapped-children")
        _scope, _component, _prover, node_out, _half_out = _prove_and_compile(
            corruption.graph, corruption.inputs
        )
        tokens = set().union(*(out.tokens for out in node_out.values()))
        assert any(t.chain in CHAIN_SPECS for t in tokens)


class TestNoFabrication:
    """Witnesses cannot be forged on valid structure."""

    def test_fake_dup_color_rejected(self):
        built = build_gadget(2, 3)
        scope, component, _prover, node_out, half_out = _prove_and_compile(
            built.graph, built.inputs, delta=2
        )
        liar = built.ports[0]
        out = node_out[liar]
        color = scope.color(scope.graph.neighbor(liar, 0))
        node_out[liar] = NeNodeOutput(out.psi, out.summary, out.tokens, color)
        # mark two halves with that color
        ports = [p for p in range(built.graph.degree(liar))][:2]
        for p in ports:
            half = half_out[(liar, p)]
            half_out[(liar, p)] = NeHalfOutput(
                half.psi, half.summary, half.tokens, color
            )
        violations = verify_ne_proof(scope, component, node_out, half_out)
        assert violations  # the second mark's far color cannot match too

    def test_fake_chain_rejected(self):
        built = build_gadget(2, 4)
        scope, component, _prover, node_out, half_out = _prove_and_compile(
            built.graph, built.inputs, delta=2
        )
        # plant a 2d chain start at an interior node of the valid gadget
        start = next(
            v
            for v in component
            if scope.follow(v, RIGHT) is not None
            and scope.follow(v, LCHILD) is not None
        )
        token = ChainToken("2d", 99, 0)

        def with_token(v, extra):
            out = node_out[v]
            node_out[v] = NeNodeOutput(
                out.psi, out.summary, out.tokens | {extra}, out.dup_color
            )
            for p in range(built.graph.degree(v)):
                if (v, p) in half_out:
                    h = half_out[(v, p)]
                    half_out[(v, p)] = NeHalfOutput(
                        h.psi, h.summary, h.tokens | {extra}, h.dup_mark
                    )

        with_token(start, token)
        violations = verify_ne_proof(scope, component, node_out, half_out)
        assert violations  # the chain must continue but closes on start

    def test_complete_fake_chain_closes_and_rejected(self):
        """Even laying out the full chain on a valid gadget fails: the
        path returns to the start, which then holds A and the last
        letter simultaneously."""
        built = build_gadget(2, 4)
        scope, component, _prover, node_out, half_out = _prove_and_compile(
            built.graph, built.inputs, delta=2
        )
        start = next(
            v
            for v in component
            if scope.follow(v, LCHILD) is not None
        )
        # walk the 2c path, which in a valid gadget returns to start
        path = [start]
        node = start
        for label in CHAIN_SPECS["2c"]:
            node = scope.follow(node, label)
            assert node is not None
            path.append(node)
        assert path[-1] == start

        def add(v, token):
            out = node_out[v]
            node_out[v] = NeNodeOutput(
                out.psi, out.summary, out.tokens | {token}, out.dup_color
            )
            for p in range(built.graph.degree(v)):
                if (v, p) in half_out:
                    h = half_out[(v, p)]
                    half_out[(v, p)] = NeHalfOutput(
                        h.psi, h.summary, h.tokens | {token}, h.dup_mark
                    )

        for letter, v in enumerate(path):
            add(v, ChainToken("2c", 5, letter))
        violations = verify_ne_proof(scope, component, node_out, half_out)
        assert any("closes on itself" in str(v) for v in violations)


class TestTamperDetection:
    def test_broken_replication_detected(self):
        built = build_gadget(2, 3)
        scope, component, _prover, node_out, half_out = _prove_and_compile(
            built.graph, built.inputs, delta=2
        )
        victim = built.center
        half = half_out[(victim, 0)]
        half_out[(victim, 0)] = NeHalfOutput(
            ERROR, half.summary, half.tokens, half.dup_mark
        )
        violations = verify_ne_proof(scope, component, node_out, half_out)
        assert any("replicate" in str(v) for v in violations)

    def test_missing_half_detected(self):
        built = build_gadget(2, 3)
        scope, component, _prover, node_out, half_out = _prove_and_compile(
            built.graph, built.inputs, delta=2
        )
        del half_out[(built.center, 0)]
        violations = verify_ne_proof(scope, component, node_out, half_out)
        assert any("missing half" in str(v) for v in violations)
