"""Telemetry: span timing, merge algebra, piggyback, and inertness.

The obs layer's load-bearing claims, pinned:

* spans nest by path and their aggregates are timing-consistent
  (``min <= mean <= max``, children bounded by parents);
* snapshot merge is idempotent and commutative — the same algebra the
  shard-merge suite pins for trial records, tested the same
  property-style way (shuffled orders, injected duplicates);
* worker telemetry piggybacks on chunk results, so engine counters
  agree at every worker count;
* telemetry is inert: records are bit-identical with it enabled or
  disabled, at K in {1, 4} shards.
"""

from __future__ import annotations

import json
import random
import threading
import time

import pytest

from repro.engine.cache import TrialCache
from repro.engine.cli import main as engine_main
from repro.engine.runner import (
    ShardReport,
    merge_shard_reports,
    plan_experiment,
    run_experiment,
    run_shard,
)
from repro.engine.spec import ExperimentSpec
from repro.obs import (
    Telemetry,
    TraceSink,
    aggregate,
    format_telemetry,
    get_telemetry,
    merge_snapshots,
    set_enabled,
)
from repro.runtime.entrypoints import family_ref, solver_ref, verifier_ref


@pytest.fixture(autouse=True)
def clean_telemetry():
    """Each test sees a drained, enabled default registry."""
    telemetry = get_telemetry()
    telemetry.detach_sink()
    telemetry.reset()
    was_enabled = set_enabled(True)
    yield telemetry
    set_enabled(was_enabled)
    telemetry.detach_sink()
    telemetry.reset()


def registry_spec(name, solver, problem, family, ns, seeds):
    return ExperimentSpec(
        name=name,
        solver=solver_ref(solver),
        generator=family_ref(family),
        verifier=verifier_ref(problem),
        ns=ns,
        seeds=seeds,
    )


PARITY_SPEC = registry_spec(
    "obs/degree-parity/parity@cycle",
    "parity",
    "degree-parity",
    "cycle",
    ns=(8, 12, 16),
    seeds=(0, 1),
)


class TestSpans:
    def test_span_aggregates_are_timing_consistent(self):
        telemetry = Telemetry()
        for _ in range(3):
            with telemetry.span("work"):
                time.sleep(0.002)
        stats = telemetry.span_stats()["work"]
        assert stats["count"] == 3
        mean = stats["total_s"] / stats["count"]
        assert 0 < stats["min_s"] <= mean <= stats["max_s"] <= stats["total_s"]
        # perf_counter is monotonic: three 2ms sleeps cannot total less
        # than one of them.
        assert stats["total_s"] >= 0.002

    def test_nested_spans_record_slash_paths(self):
        telemetry = Telemetry()
        with telemetry.span("outer"):
            with telemetry.span("inner"):
                time.sleep(0.001)
            with telemetry.span("inner"):
                pass
        stats = telemetry.span_stats()
        assert set(stats) == {"outer", "outer/inner"}
        assert stats["outer"]["count"] == 1
        assert stats["outer/inner"]["count"] == 2
        # A child runs inside its parent, so its time is bounded by it.
        assert stats["outer/inner"]["total_s"] <= stats["outer"]["total_s"]

    def test_nesting_is_per_thread(self):
        telemetry = Telemetry()
        seen = []

        def worker():
            with telemetry.span("threaded"):
                seen.append(True)

        with telemetry.span("outer"):
            thread = threading.Thread(target=worker)
            thread.start()
            thread.join()
        # The thread's span must not pick up the main thread's stack.
        assert "threaded" in telemetry.span_stats()
        assert "outer/threaded" not in telemetry.span_stats()

    def test_span_recorded_even_when_body_raises(self):
        telemetry = Telemetry()
        with pytest.raises(RuntimeError):
            with telemetry.span("failing"):
                raise RuntimeError("boom")
        assert telemetry.span_stats()["failing"]["count"] == 1

    def test_disabled_telemetry_is_a_noop(self):
        telemetry = Telemetry(enabled=False)
        with telemetry.span("ignored"):
            pass
        telemetry.incr("ignored", 5)
        telemetry.event("ignored")
        assert telemetry.counters() == {}
        assert telemetry.span_stats() == {}
        assert telemetry.snapshot()["parts"] == {}


def random_snapshot(rng: random.Random) -> dict:
    """One synthetic delta snapshot with a unique origin."""
    telemetry = Telemetry()
    for _ in range(rng.randrange(1, 5)):
        telemetry.incr(rng.choice(["a", "b", "c"]), rng.randrange(1, 10))
    for _ in range(rng.randrange(0, 3)):
        with telemetry.span(rng.choice(["x", "y"])):
            pass
    return telemetry.snapshot(origin=f"origin-{rng.random()}")


class TestMergeAlgebra:
    def test_delta_snapshots_partition_exactly_once(self):
        telemetry = Telemetry()
        telemetry.incr("hits", 3)
        first = telemetry.snapshot(reset=True)
        telemetry.incr("hits", 2)
        second = telemetry.snapshot(reset=True)
        merged = merge_snapshots([first, second])
        assert aggregate(merged)["counters"] == {"hits": 5}
        # And nothing is left behind after the final drain.
        assert telemetry.snapshot()["parts"] == {}

    def test_merge_is_idempotent_and_commutative(self):
        rng = random.Random(0xC0FFEE)
        for _ in range(20):
            snapshots = [random_snapshot(rng) for _ in range(rng.randrange(2, 6))]
            reference = merge_snapshots(snapshots)
            # Any shuffle, with duplicates injected, merges identically.
            shuffled = snapshots[:] + [rng.choice(snapshots)]
            rng.shuffle(shuffled)
            assert merge_snapshots(shuffled) == reference
            # Re-merging the merged snapshot adds nothing.
            assert merge_snapshots([reference, reference]) == reference
            assert merge_snapshots([reference, *snapshots]) == reference
            # Aggregation is therefore order-independent too.
            assert aggregate(merge_snapshots(shuffled)) == aggregate(reference)

    def test_merge_is_associative(self):
        rng = random.Random(7)
        a, b, c = (random_snapshot(rng) for _ in range(3))
        left = merge_snapshots([merge_snapshots([a, b]), c])
        right = merge_snapshots([a, merge_snapshots([b, c])])
        assert left == right

    def test_merge_tolerates_none_and_empty(self):
        empty = Telemetry().snapshot()
        assert merge_snapshots([None, empty, None]) == {"v": 1, "parts": {}}
        assert aggregate(None) == {"counters": {}, "spans": {}}

    def test_merge_refuses_foreign_versions(self):
        with pytest.raises(ValueError, match="snapshot version"):
            merge_snapshots([{"v": 99, "parts": {}}])

    def test_snapshot_round_trips_through_json(self):
        telemetry = Telemetry()
        telemetry.incr("hits", 2)
        with telemetry.span("phase"):
            pass
        snap = telemetry.snapshot()
        assert json.loads(json.dumps(snap)) == snap


class TestEngineTelemetry:
    def test_worker_snapshots_piggyback_at_every_worker_count(self):
        total = len(PARITY_SPEC.ns) * len(PARITY_SPEC.seeds)
        views = {}
        for workers in (1, 2):
            get_telemetry().reset()
            report = run_experiment(PARITY_SPEC, workers=workers)
            assert report.telemetry is not None
            views[workers] = aggregate(report.telemetry)
            counters = views[workers]["counters"]
            # Every computed trial was counted by whichever process ran
            # it, and the snapshots all made it back to the report.
            assert counters["trials.executed"] == total == report.computed
            assert counters["pool.batches_dispatched"] == report.batches
            spans = views[workers]["spans"]
            for phase in ("trial.build", "trial.solve", "trial.verify"):
                assert spans[phase]["count"] == total

    def test_shard_report_telemetry_survives_the_payload_round_trip(self):
        plan = plan_experiment(PARITY_SPEC, num_shards=2, batch_size=2)
        report = run_shard(plan.manifest(0))
        assert report.telemetry is not None
        revived = ShardReport.from_dict(
            json.loads(json.dumps(report.as_dict()))
        )
        assert revived.telemetry == report.telemetry

    def test_merged_telemetry_is_order_independent(self):
        plan = plan_experiment(PARITY_SPEC, num_shards=3, batch_size=2)
        reports = [run_shard(plan.manifest(i)) for i in range(3)]
        merged = [
            merge_shard_reports([reports[i] for i in order])
            for order in ((0, 1, 2), (2, 0, 1), (1, 2, 0))
        ]
        assert merged[0].telemetry == merged[1].telemetry == merged[2].telemetry
        assert (
            aggregate(merged[0].telemetry)["counters"]["trials.executed"]
            == len(PARITY_SPEC.ns) * len(PARITY_SPEC.seeds)
        )

    def test_merge_reports_wall_clock_and_aggregate_compute(self):
        plan = plan_experiment(PARITY_SPEC, num_shards=2, batch_size=2)
        reports = [run_shard(plan.manifest(i)) for i in range(2)]
        merged = merge_shard_reports(reports)
        assert merged.elapsed == max(r.elapsed for r in reports)
        assert merged.cpu_elapsed == pytest.approx(
            sum(r.elapsed for r in reports)
        )
        payload = merged.as_dict()
        assert payload["elapsed_s"] == round(merged.elapsed, 4)
        assert payload["cpu_elapsed_s"] == round(merged.cpu_elapsed, 4)

    @pytest.mark.parametrize("num_shards", [1, 4])
    def test_records_bit_identical_with_telemetry_on_and_off(self, num_shards):
        plan = plan_experiment(PARITY_SPEC, num_shards=num_shards, batch_size=2)

        def run_all():
            return merge_shard_reports(
                [run_shard(plan.manifest(i)) for i in range(num_shards)]
            )

        with_telemetry = run_all()
        assert with_telemetry.telemetry is not None
        set_enabled(False)
        without = run_all()
        set_enabled(True)
        assert without.telemetry is None
        assert without.records == with_telemetry.records
        assert without.sweep == with_telemetry.sweep

    def test_warm_replay_counts_hits_not_trials(self, tmp_path):
        cache = TrialCache(str(tmp_path / "cache"))
        run_experiment(PARITY_SPEC, cache=cache)
        get_telemetry().reset()
        report = run_experiment(
            PARITY_SPEC, cache=TrialCache(str(tmp_path / "cache"))
        )
        counters = aggregate(report.telemetry)["counters"]
        assert counters["cache.hits"] == report.trials_total
        assert "trials.executed" not in counters


class TestCacheCounters:
    def test_hit_miss_put_and_compaction_counters(self, tmp_path):
        telemetry = get_telemetry()
        cache = TrialCache(str(tmp_path / "cache"))
        assert cache.get("aa-missing") is None
        cache.put("aa-key", {"rounds": 1})
        cache.put("aa-key", {"rounds": 1})  # duplicate append line
        assert cache.get("aa-key") == {"rounds": 1}
        counters = telemetry.counters()
        assert counters["cache.misses"] == 1
        assert counters["cache.hits"] == 1
        assert counters["cache.puts"] == 2
        kept, dropped = cache.compact()
        counters = telemetry.counters()
        assert counters["cache.compactions"] == 1
        assert counters["cache.records_compacted"] == dropped == 1

    def test_merge_counters(self, tmp_path):
        telemetry = get_telemetry()
        source = TrialCache(str(tmp_path / "source"))
        source.put("ab-key", {"rounds": 2})
        destination = TrialCache(str(tmp_path / "destination"))
        destination.merge(str(tmp_path / "source"))
        counters = telemetry.counters()
        assert counters["cache.merges"] == 1
        assert counters["cache.merge_new_records"] == 1


class TestTraceAndRendering:
    def test_trace_sink_streams_span_and_event_lines(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        telemetry = Telemetry()
        with TraceSink(path) as sink:
            telemetry.attach_sink(sink)
            with telemetry.span("outer"):
                with telemetry.span("inner"):
                    pass
            telemetry.event("marker", shard=3)
            telemetry.detach_sink()
        lines = [
            json.loads(line)
            for line in open(path, encoding="utf-8")
            if line.strip()
        ]
        kinds = [(entry["kind"], entry.get("name")) for entry in lines]
        # Spans emit on close: inner first, then outer, then the event.
        assert kinds == [
            ("span", "outer/inner"),
            ("span", "outer"),
            ("event", "marker"),
        ]
        assert lines[2]["shard"] == 3
        assert all("t" in entry and "pid" in entry for entry in lines)

    def test_format_telemetry_renders_phases_and_counters(self):
        telemetry = Telemetry()
        telemetry.incr("cache.hits", 2)
        telemetry.incr("other.counter", 1)
        with telemetry.span("trial.build"):
            pass
        text = format_telemetry(telemetry.snapshot(), title="demo")
        assert "trial.build" in text and "cache.hits" in text
        filtered = format_telemetry(
            telemetry.snapshot(), title="demo", counter_prefix="cache."
        )
        assert "other.counter" not in filtered
        assert "no telemetry recorded" in format_telemetry(None)

    def test_cli_trace_stats_and_cache_status(self, tmp_path, capsys):
        report_path = str(tmp_path / "report.json")
        trace_path = str(tmp_path / "trace.jsonl")
        cache_dir = str(tmp_path / "cache")
        code = engine_main(
            [
                "run",
                "--experiment",
                "sinkless",
                "--max-n",
                "64",
                "--workers",
                "1",
                "--cache-dir",
                cache_dir,
                "--json",
                report_path,
                "--trace",
                trace_path,
            ]
        )
        assert code == 0
        with open(trace_path, encoding="utf-8") as handle:
            kinds = {json.loads(line)["kind"] for line in handle if line.strip()}
        assert "span" in kinds
        capsys.readouterr()
        assert engine_main(["stats", "--report", report_path]) == 0
        out = capsys.readouterr().out
        assert "phases" in out and "trial.solve" in out and "compute" in out
        assert engine_main(["cache", "--cache-dir", cache_dir, "--status"]) == 0
        out = capsys.readouterr().out
        assert "record(s) on disk" in out
        assert "cache.shard_files_loaded" in out
