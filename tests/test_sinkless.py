"""Tests for sinkless orientation: the LCL, the fixer, and both solvers."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.generators import (
    complete,
    complete_binary_tree,
    cycle,
    disjoint_union,
    path,
    random_regular,
    star,
    torus_grid,
    with_isolated_nodes,
)
from repro.lcl import verify
from repro.local import Instance, PortGraph
from repro.local.identifiers import random_ids, sequential_ids
from repro.problems import (
    DeterministicSinklessSolver,
    Orientation,
    RandomizedSinklessSolver,
    SinklessOrientation,
    fix_deficient,
)
from repro.util.rng import NodeRng
from tests.conftest import build_multigraph, multigraphs


def _solve_and_verify(graph, solver, seed=0):
    instance = Instance.simple(graph, seed=seed)
    result = solver.solve(instance)
    problem = SinklessOrientation().problem()
    verdict = verify(problem, graph, instance.inputs or result.outputs, result.outputs)
    assert verdict.ok, verdict.summary()
    return result


class TestProblemDefinition:
    def test_oriented_cycle_accepted(self):
        graph = cycle(6)
        problem = SinklessOrientation().problem()
        # orient around the cycle deterministically
        from repro.local.identifiers import sequential_ids

        orientation = Orientation.by_lower_id(graph, sequential_ids(6))
        outputs = orientation.to_labeling()
        from repro.lcl import Labeling

        assert verify(problem, graph, Labeling(graph), outputs).ok

    def test_sink_rejected_on_cubic(self):
        graph = complete(4)  # 3-regular
        problem = SinklessOrientation().problem()
        # orient everything into node 0: node 0 becomes a sink
        tails = {}
        for edge in graph.edges():
            if 0 in edge.nodes():
                tails[edge.eid] = edge.a if edge.b.node == 0 else edge.b
            else:
                tails[edge.eid] = edge.a
        outputs = Orientation(graph, tails).to_labeling()
        from repro.lcl import Labeling

        verdict = verify(problem, graph, Labeling(graph), outputs)
        assert not verdict.ok
        assert any(v.kind == "node" and v.where == 0 for v in verdict.violations)

    def test_inconsistent_edge_rejected(self):
        graph = cycle(4)
        problem = SinklessOrientation().problem()
        from repro.lcl import Labeling
        from repro.problems import OUT

        outputs = Labeling(graph).fill_halves(OUT)
        verdict = verify(problem, graph, Labeling(graph), outputs)
        assert not verdict.ok
        assert any(v.kind == "edge" for v in verdict.violations)

    def test_low_degree_nodes_exempt(self):
        graph = path(2)
        problem = SinklessOrientation().problem()
        from repro.lcl import Labeling
        from repro.problems import IN, OUT

        outputs = Labeling(graph)
        outputs.set_half_at(0, 0, OUT)
        outputs.set_half_at(1, 0, IN)
        assert verify(problem, graph, Labeling(graph), outputs).ok


class TestOrientation:
    def test_by_lower_id_and_roundtrip(self):
        graph = cycle(5)
        ids = sequential_ids(5)
        orientation = Orientation.by_lower_id(graph, ids)
        labeling = orientation.to_labeling()
        back = Orientation.from_labeling(graph, labeling)
        for eid in range(graph.num_edges):
            assert back.tail(eid) == orientation.tail(eid)

    def test_self_loop_gives_out_degree(self):
        graph = build_multigraph(1, [(0, 0)])
        orientation = Orientation.by_lower_id(graph, sequential_ids(1))
        assert orientation.out_degree(0) == 1
        assert len(orientation.in_edge_ids(0)) == 1
        assert len(orientation.out_edge_ids(0)) == 1

    def test_reverse_updates_degrees(self):
        graph = path(2)
        orientation = Orientation.by_lower_id(graph, sequential_ids(2))
        assert orientation.out_degree(0) == 1
        orientation.reverse(0)
        assert orientation.out_degree(0) == 0
        assert orientation.out_degree(1) == 1

    def test_total_orientation_required(self):
        graph = cycle(3)
        with pytest.raises(ValueError):
            Orientation(graph, {0: graph.edge(0).a})

    def test_from_labeling_rejects_garbage(self):
        from repro.lcl import Labeling

        graph = path(2)
        with pytest.raises(ValueError):
            Orientation.from_labeling(graph, Labeling(graph))


class TestFixer:
    def test_fixes_planted_sink(self):
        graph = complete(4)
        ids = sequential_ids(4)
        tails = {}
        for edge in graph.edges():
            if 0 in edge.nodes():
                tails[edge.eid] = edge.a if edge.b.node == 0 else edge.b
            else:
                tails[edge.eid] = edge.a
        orientation = Orientation(graph, tails)
        assert orientation.out_degree(0) == 0
        report = fix_deficient(graph, orientation, 3, priority=ids.of)
        assert orientation.out_degree(0) >= 1
        assert all(
            orientation.out_degree(v) >= 1 for v in graph.nodes()
        )
        assert report.paths_reversed >= 1

    def test_fixes_all_sinks_on_regular_graphs(self):
        rng = random.Random(5)
        graph = random_regular(60, 3, rng)
        ids = sequential_ids(60)
        # adversarial start: orient every edge toward its higher id
        tails = {}
        for edge in graph.edges():
            tails[edge.eid] = (
                edge.a if ids.of(edge.a.node) > ids.of(edge.b.node) else edge.b
            )
        orientation = Orientation(graph, tails)
        fix_deficient(graph, orientation, 3, priority=ids.of)
        assert all(orientation.out_degree(v) >= 1 for v in graph.nodes())

    def test_exempt_donors_in_trees(self):
        # binary tree: internal nodes have degree 3, leaves are exempt
        graph = complete_binary_tree(5)
        ids = sequential_ids(graph.num_nodes)
        # orient every edge toward the root: the root is fine, but some
        # internal node has out-degree 0 only if edges point to parent...
        tails = {}
        for edge in graph.edges():
            lo, hi = sorted(edge.nodes())
            tails[edge.eid] = edge.a if edge.a.node == hi else edge.b
        orientation = Orientation(graph, tails)
        fix_deficient(graph, orientation, 3, priority=ids.of)
        for v in graph.nodes():
            if graph.degree(v) >= 3:
                assert orientation.out_degree(v) >= 1

    @given(multigraphs(max_nodes=10, max_edges=20), st.integers(0, 2**30))
    @settings(max_examples=50, deadline=None)
    def test_fixer_total_on_multigraphs(self, graph, seed):
        rng = random.Random(seed)
        orientation = Orientation.by_coin_flips(graph, rng)
        ids = sequential_ids(graph.num_nodes)
        fix_deficient(graph, orientation, 3, priority=ids.of, rng=rng)
        for v in graph.nodes():
            if graph.degree(v) >= 3:
                assert orientation.out_degree(v) >= 1


class TestDeterministicSolver:
    @pytest.mark.parametrize(
        "graph_factory",
        [
            lambda: complete(4),
            lambda: torus_grid(4, 4),
            lambda: random_regular(40, 3, random.Random(1)),
            lambda: random_regular(40, 4, random.Random(2)),
            lambda: disjoint_union(complete(4), cycle(5), star(4)),
            lambda: with_isolated_nodes(complete(5), 7),
            lambda: complete_binary_tree(4),
        ],
    )
    def test_valid_on_standard_graphs(self, graph_factory):
        _solve_and_verify(graph_factory(), DeterministicSinklessSolver())

    def test_handles_self_loops_and_parallels(self):
        graph = build_multigraph(4, [(0, 0), (0, 1), (0, 2), (1, 2), (1, 2), (2, 3), (3, 3)])
        _solve_and_verify(graph, DeterministicSinklessSolver())

    def test_deterministic_across_runs(self):
        graph = random_regular(30, 3, random.Random(3))
        instance = Instance.simple(graph)
        a = DeterministicSinklessSolver().solve(instance)
        b = DeterministicSinklessSolver().solve(instance)
        assert a.outputs == b.outputs
        assert a.node_radius == b.node_radius

    def test_radius_scales_like_log_on_regular(self):
        rng = random.Random(7)
        small = random_regular(32, 3, rng)
        large = random_regular(512, 3, rng)
        r_small = _solve_and_verify(small, DeterministicSinklessSolver()).rounds
        r_large = _solve_and_verify(large, DeterministicSinklessSolver()).rounds
        assert r_large > r_small  # grows with n
        assert r_large <= 6 * max(r_small, 1)  # but gently (log-ish)

    def test_exempt_only_graph_zero_claims(self):
        graph = cycle(12)  # all degree 2: everyone exempt
        result = _solve_and_verify(graph, DeterministicSinklessSolver())
        assert result.rounds <= 1

    @given(multigraphs(max_nodes=12, max_edges=24))
    @settings(max_examples=40, deadline=None)
    def test_valid_on_random_multigraphs(self, graph):
        _solve_and_verify(graph, DeterministicSinklessSolver())


class TestRandomizedSolver:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_valid_on_cubic_graphs(self, seed):
        graph = random_regular(64, 3, random.Random(seed + 10))
        _solve_and_verify(graph, RandomizedSinklessSolver(), seed=seed)

    def test_requires_rng(self):
        graph = complete(4)
        instance = Instance(graph, sequential_ids(4))
        with pytest.raises(ValueError):
            RandomizedSinklessSolver().solve(instance)

    def test_reproducible_given_seed(self):
        graph = random_regular(40, 3, random.Random(11))
        a = RandomizedSinklessSolver().solve(Instance.simple(graph, seed=5))
        b = RandomizedSinklessSolver().solve(Instance.simple(graph, seed=5))
        assert a.outputs == b.outputs

    def test_different_seeds_differ(self):
        graph = random_regular(40, 3, random.Random(11))
        a = RandomizedSinklessSolver().solve(Instance.simple(graph, seed=5))
        b = RandomizedSinklessSolver().solve(Instance.simple(graph, seed=6))
        assert a.outputs != b.outputs  # astronomically unlikely to match

    def test_faster_than_deterministic_at_scale(self):
        rng = random.Random(21)
        graph = random_regular(1024, 3, rng)
        ids = random_ids(1024, rng)
        det = DeterministicSinklessSolver().solve(
            Instance(graph, ids, None, None, None)
        )
        rand = RandomizedSinklessSolver().solve(
            Instance(graph, ids, None, None, NodeRng(1))
        )
        assert rand.rounds < det.rounds

    @given(multigraphs(max_nodes=12, max_edges=24), st.integers(0, 2**30))
    @settings(max_examples=40, deadline=None)
    def test_valid_on_random_multigraphs(self, graph, seed):
        _solve_and_verify(graph, RandomizedSinklessSolver(), seed=seed)
