"""Tests for logarithm helpers and per-node randomness."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.util import NodeRng, ceil_log2, floor_log2, fork_rng, iterated_log, log_star


class TestLogMath:
    def test_floor_log2_exact_powers(self):
        for k in range(20):
            assert floor_log2(2**k) == k
            assert ceil_log2(2**k) == k

    def test_floor_and_ceil_straddle(self):
        for x in range(3, 1000):
            assert 2 ** floor_log2(x) <= x < 2 ** (floor_log2(x) + 1)
            assert 2 ** ceil_log2(x) >= x

    def test_nonpositive_rejected(self):
        with pytest.raises(ValueError):
            floor_log2(0)
        with pytest.raises(ValueError):
            ceil_log2(-3)

    def test_log_star_values(self):
        assert log_star(1) == 0
        assert log_star(2) == 1
        assert log_star(4) == 2
        assert log_star(16) == 3
        assert log_star(65536) == 4
        assert log_star(2.0**65536 if False else 10**9) == 5

    def test_iterated_log(self):
        assert iterated_log(256, 0) == 256
        assert iterated_log(256, 1) == pytest.approx(8, abs=1e-6)
        assert iterated_log(256, 2) == pytest.approx(3, abs=1e-6)
        assert iterated_log(1, 5) == 0.0
        with pytest.raises(ValueError):
            iterated_log(4, -1)

    @given(st.integers(min_value=2, max_value=10**9))
    @settings(max_examples=50)
    def test_log_star_monotone_vs_loglog(self, x):
        assert log_star(x) <= math.log2(math.log2(x) + 1) + 3


class TestRng:
    def test_fork_reproducible(self):
        a = fork_rng(42, 7).random()
        b = fork_rng(42, 7).random()
        assert a == b

    def test_fork_independent_across_nodes(self):
        values = {fork_rng(42, node).random() for node in range(100)}
        assert len(values) == 100

    def test_fork_independent_across_seeds(self):
        assert fork_rng(1, 0).random() != fork_rng(2, 0).random()

    def test_node_rng_caches_stream(self):
        rng = NodeRng(9)
        first = rng.for_node(3)
        again = rng.for_node(3)
        assert first is again

    def test_node_rng_global_stream(self):
        rng = NodeRng(9)
        assert rng.global_stream() is rng.for_node(-1)
