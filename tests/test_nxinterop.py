"""Tests for the networkx boundary conversions."""

from __future__ import annotations

import networkx as nx
import pytest
from hypothesis import given, settings

from repro.local.nxinterop import from_networkx, to_networkx
from tests.conftest import build_multigraph, multigraphs


class TestRoundTrip:
    @given(multigraphs())
    @settings(max_examples=40, deadline=None)
    def test_there_and_back(self, graph):
        nxg = to_networkx(graph)
        back, mapping = from_networkx(nxg)
        assert back.num_nodes == graph.num_nodes
        assert back.num_edges == graph.num_edges
        for v in graph.nodes():
            assert back.degree(mapping[v]) == graph.degree(v)

    def test_ports_preserved_as_attributes(self):
        graph = build_multigraph(2, [(0, 1), (0, 1)])
        nxg = to_networkx(graph)
        ports = {data["ports"] for _u, _v, data in nxg.edges(data=True)}
        assert ports == {(0, 0), (1, 1)}

    def test_from_simple_graph(self):
        nxg = nx.petersen_graph()
        graph, mapping = from_networkx(nxg)
        assert graph.num_nodes == 10
        assert graph.num_edges == 15
        assert graph.max_degree == 3
        assert graph.is_simple()

    def test_from_graph_with_string_labels(self):
        nxg = nx.Graph([("a", "b"), ("b", "c")])
        graph, mapping = from_networkx(nxg)
        assert graph.num_nodes == 3
        assert mapping["a"] == 0

    def test_loops_survive(self):
        nxg = nx.MultiGraph()
        nxg.add_edge(0, 0)
        graph, _mapping = from_networkx(nxg)
        assert graph.has_self_loop()
        assert graph.degree(0) == 2
