"""The fault-tolerant fabric: chaos runs, leases, backoff, degradation.

The acceptance property mirrors the shard layer's: a K=8 fabric run
whose shards are SIGKILLed, hung, and corrupted mid-flight — each
recovered by lease reassignment and retry — merges to a cache
byte-identical to the clean single-host run.  Around it, the unit
surface: backoff schedules under a fake clock, lease-board transitions
and restart resume, fault-spec parsing, the typed
:class:`WorkerCrashed` contract of the pool, heartbeat emission and
observer-side liveness, and the CLI's structured error hygiene.
"""

from __future__ import annotations

import json
import os
import random
import signal

import pytest

from repro.engine.cache import TrialCache
from repro.engine.cli import main as engine_main
from repro.engine.fabric import (
    BackoffPolicy,
    LeaseBoard,
    fabric_key,
    run_fabric,
)
from repro.engine.faults import (
    FaultInjector,
    FaultSpec,
    corrupt_jsonl,
    parse_fault_specs,
)
from repro.engine.pool import WorkerCrashed, _make_executor, run_task_batches
from repro.engine.runner import plan_experiment, run_experiment
from repro.engine.shard import dump_plan_file, load_plan_file
from repro.engine.spec import ExperimentSpec
from repro.obs import (
    Heartbeat,
    HeartbeatEmitter,
    LivenessMonitor,
    read_heartbeat,
    write_heartbeat,
)
from repro.runtime.entrypoints import family_ref, solver_ref, verifier_ref


def registry_spec(name, solver, problem, family, ns, seeds):
    return ExperimentSpec(
        name=name,
        solver=solver_ref(solver),
        generator=family_ref(family),
        verifier=verifier_ref(problem),
        ns=ns,
        seeds=seeds,
    )


PARITY_SPEC = registry_spec(
    "test/degree-parity/parity@cycle",
    "parity",
    "degree-parity",
    "cycle",
    ns=(8, 12, 16),
    seeds=(0, 1, 2),
)


def write_plan(tmp_path, num_shards, spec=PARITY_SPEC, name="plan.json"):
    """A plan file with one-trial chunks, so every shard owns work."""
    plans = [plan_experiment(spec, num_shards=num_shards, batch_size=1)]
    path = str(tmp_path / name)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(dump_plan_file("test-fabric", plans), handle)
    return path, plans


class FakeClock:
    def __init__(self, now=1000.0):
        self.now = now

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


# -- backoff -----------------------------------------------------------


class TestBackoffPolicy:
    def test_delays_grow_exponentially_and_cap(self):
        policy = BackoffPolicy(
            base=0.5, factor=2.0, max_delay=3.0, jitter=0.0, max_attempts=6
        )
        assert policy.schedule() == [0.5, 1.0, 2.0, 3.0, 3.0]

    def test_jitter_stretches_within_bounds_and_is_seeded(self):
        policy = BackoffPolicy(base=1.0, factor=2.0, max_delay=60.0, jitter=0.25)
        for attempt in (1, 2, 3):
            raw = policy.delay(attempt)
            jittered = policy.delay(attempt, random.Random(7))
            assert raw <= jittered <= raw * 1.25
        assert policy.delay(2, random.Random(7)) == policy.delay(
            2, random.Random(7)
        )

    def test_validation(self):
        with pytest.raises(ValueError, match="base"):
            BackoffPolicy(base=0.0)
        with pytest.raises(ValueError, match="jitter"):
            BackoffPolicy(jitter=1.5)
        with pytest.raises(ValueError, match="attempt"):
            BackoffPolicy(max_attempts=0)
        with pytest.raises(ValueError, match="1-based"):
            BackoffPolicy().delay(0)


# -- fault specs -------------------------------------------------------


class TestFaultSpecs:
    def test_parse_round_trips(self):
        for text in (
            "kill@1:at=1",
            "hang@2:at=3,secs=0.5",
            "corrupt@0:at=2,attempts=1+2",
            "delay@4:at=1,attempts=2,secs=2",
        ):
            spec = FaultSpec.parse(text)
            assert FaultSpec.parse(spec.spec_string()) == spec

    def test_parse_defaults_and_env_list(self):
        spec = FaultSpec.parse("kill@3")
        assert (spec.at, spec.attempts) == (1, (1,))
        specs = parse_fault_specs("kill@1;hang@2:at=2 ; ")
        assert [s.mode for s in specs] == ["kill", "hang"]
        assert parse_fault_specs(None) == []

    def test_parse_rejects_malformed(self):
        for text in ("kill", "kill@", "boom@1", "kill@1:at", "kill@1:depth=2"):
            with pytest.raises(ValueError):
                FaultSpec.parse(text)

    def test_injector_filters_by_shard_and_attempt(self):
        specs = parse_fault_specs("kill@1:at=1;delay@2:at=1,secs=0")
        assert not FaultInjector(specs, shard_index=0).active
        assert FaultInjector(specs, shard_index=1).active
        # attempt 2 was not armed: the retry must run clean.
        assert not FaultInjector(specs, shard_index=1, attempt=2).active

    def test_delay_fires_once_at_its_trial(self):
        injector = FaultInjector(
            [FaultSpec("delay", shard=0, at=2, seconds=0.0)], shard_index=0
        )
        injector.on_trial()
        assert not injector._fired
        injector.on_trial()
        assert len(injector._fired) == 1

    def test_corrupt_jsonl_same_length_garbage(self, tmp_path):
        root = str(tmp_path / "root")
        cache = TrialCache(root)
        cache.put_many([(f"k{i}", {"v": i}) for i in range(3)])
        lines_before = []
        for name in sorted(os.listdir(root)):
            with open(os.path.join(root, name), encoding="utf-8") as handle:
                lines_before += [line.rstrip("\n") for line in handle]
        assert corrupt_jsonl(root, at=2)
        lines_after = []
        for name in sorted(os.listdir(root)):
            with open(os.path.join(root, name), encoding="utf-8") as handle:
                lines_after += [line.rstrip("\n") for line in handle]
        assert len(lines_after) == len(lines_before)
        garbled = [
            (before, after)
            for before, after in zip(lines_before, lines_after)
            if before != after
        ]
        assert len(garbled) == 1
        before, after = garbled[0]
        assert len(after) == len(before)
        with pytest.raises(json.JSONDecodeError):
            json.loads(after)
        # The tolerant reader skips the damage; the record is *absent*,
        # not poisonous — which is what turns corruption into a retry.
        fresh = TrialCache(root)
        fresh.load_all()
        assert len(fresh) == 2

    def test_corrupt_jsonl_beyond_eof_is_a_noop(self, tmp_path):
        root = str(tmp_path / "root")
        TrialCache(root).put("k", {"v": 1})
        assert not corrupt_jsonl(root, at=5)
        assert not corrupt_jsonl(str(tmp_path / "missing"), at=1)


# -- lease board -------------------------------------------------------


class TestLeaseBoard:
    def board(self, tmp_path, clock):
        return LeaseBoard.load_or_create(
            str(tmp_path / "leases.json"), "key-a", 3, clock=clock
        )

    def test_acquire_renew_release_lifecycle(self, tmp_path):
        clock = FakeClock()
        board = self.board(tmp_path, clock)
        assert board.in_state("pending") == [0, 1, 2]
        lease = board.acquire(0, "me", ttl=30.0)
        assert (lease.state, lease.attempts, lease.owner) == ("leased", 1, "me")
        assert lease.deadline == clock.now + 30.0
        clock.advance(20.0)
        board.renew(0, ttl=30.0)
        assert board.lease(0).deadline == clock.now + 30.0
        board.release(0, "done")
        assert board.in_state("done") == [0]
        with pytest.raises(ValueError, match="already done"):
            board.acquire(0, "me", ttl=30.0)

    def test_live_lease_is_exclusive_until_expiry(self, tmp_path):
        clock = FakeClock()
        board = self.board(tmp_path, clock)
        board.acquire(1, "a", ttl=10.0)
        with pytest.raises(ValueError, match="leased to a"):
            board.acquire(1, "b", ttl=10.0)
        clock.advance(11.0)
        lease = board.acquire(1, "b", ttl=10.0)  # expired: up for grabs
        assert (lease.owner, lease.attempts) == ("b", 2)

    def test_reclaim_expired_and_reset_failed(self, tmp_path):
        clock = FakeClock()
        board = self.board(tmp_path, clock)
        board.acquire(0, "dead-launcher", ttl=5.0)
        board.acquire(1, "dead-launcher", ttl=50.0)
        clock.advance(10.0)
        assert board.reclaim_expired() == [0]
        assert board.lease(0).state == "pending"
        assert board.lease(0).attempts == 1  # attempts survive reclaim
        assert board.lease(1).state == "leased"
        board.release(1, "failed", "it kept dying")
        assert board.reset_failed() == [1]
        assert board.lease(1).cause == "it kept dying"

    def test_persistence_round_trip(self, tmp_path):
        clock = FakeClock()
        board = self.board(tmp_path, clock)
        board.acquire(2, "me", ttl=30.0)
        board.release(2, "retry", "flaky disk")
        reloaded = LeaseBoard.load(board.path, clock=clock)
        assert reloaded.fabric_key == "key-a"
        assert reloaded.lease(2).state == "pending"
        assert reloaded.lease(2).attempts == 1
        assert reloaded.lease(2).cause == "flaky disk"

    def test_refuses_foreign_board(self, tmp_path):
        clock = FakeClock()
        self.board(tmp_path, clock)
        with pytest.raises(ValueError, match="different plan"):
            LeaseBoard.load_or_create(
                str(tmp_path / "leases.json"), "key-b", 3, clock=clock
            )
        with pytest.raises(ValueError, match="shard"):
            LeaseBoard.load_or_create(
                str(tmp_path / "leases.json"), "key-a", 4, clock=clock
            )

    def test_fabric_key_tracks_plan_identity(self, tmp_path):
        _, plans_a = write_plan(tmp_path, 2, name="a.json")
        other = registry_spec(
            "test/degree-parity/parity@cycle",
            "parity",
            "degree-parity",
            "cycle",
            ns=(8, 12, 16),
            seeds=(0, 1),
        )
        _, plans_b = write_plan(tmp_path, 2, spec=other, name="b.json")
        assert fabric_key("x", plans_a) == fabric_key("x", plans_a)
        assert fabric_key("x", plans_a) != fabric_key("x", plans_b)
        assert fabric_key("x", plans_a) != fabric_key("y", plans_a)


# -- pool: typed worker-crash contract ---------------------------------


def _suicide_batch(payload):
    if payload == "die":
        os.kill(os.getpid(), signal.SIGKILL)
    return f"ok:{payload}"


class TestWorkerCrashed:
    def test_worker_death_raises_typed_error_with_lost_chunks(self):
        executor = _make_executor(2, 2, 0)
        if executor is None:
            pytest.skip("no process pool on this platform")
        executor.shutdown()
        # The guard above matters: on a pool-less platform the batches
        # would run serially and the suicide batch would kill pytest.
        delivered = {}
        with pytest.raises(WorkerCrashed) as excinfo:
            run_task_batches(
                _suicide_batch,
                ["a", "die", "b", "c"],
                workers=2,
                on_result=lambda i, result: delivered.__setitem__(i, result),
            )
        lost = set(excinfo.value.chunk_indices)
        assert 1 in lost
        assert set(delivered) | lost == {0, 1, 2, 3}
        for i, result in delivered.items():
            assert result == f"ok:{['a', 'die', 'b', 'c'][i]}"

    def test_task_exceptions_still_propagate_as_themselves(self):
        with pytest.raises(ValueError, match="boom"):
            run_task_batches(_raising_batch, ["x", "y"], workers=2)


def _raising_batch(payload):
    raise ValueError(f"boom: {payload}")


# -- heartbeats --------------------------------------------------------


class TestHeartbeat:
    def test_write_read_round_trip(self, tmp_path):
        path = str(tmp_path / "hb.json")
        write_heartbeat(
            path,
            Heartbeat(seq=3, shard_index=1, pid=42, phase="record", done=5, total=9),
        )
        beat = read_heartbeat(path)
        assert (beat.seq, beat.done, beat.total, beat.phase) == (3, 5, 9, "record")

    def test_unreadable_payloads_read_as_no_heartbeat(self, tmp_path):
        path = str(tmp_path / "hb.json")
        assert read_heartbeat(path) is None
        for garbage in ("not json", '{"v": 999, "seq": 1}', '{"v": 1}'):
            with open(path, "w", encoding="utf-8") as handle:
                handle.write(garbage)
            assert read_heartbeat(path) is None

    def test_emitter_throttles_but_forces_phase_edges(self, tmp_path):
        clock = FakeClock()
        path = str(tmp_path / "hb.json")
        emitter = HeartbeatEmitter(
            path, 0, total=10, min_interval=1.0, with_telemetry=False, clock=clock
        )
        emitter.start()
        for _ in range(5):
            emitter.record()  # all inside the throttle window
        beat = read_heartbeat(path)
        assert (beat.seq, beat.phase, beat.done) == (1, "start", 0)
        clock.advance(1.5)
        emitter.record()
        beat = read_heartbeat(path)
        assert (beat.seq, beat.phase, beat.done) == (2, "record", 6)
        emitter.done()  # phase edge: writes despite the window
        assert read_heartbeat(path).phase == "done"

    def test_liveness_is_observer_side_seq_tracking(self, tmp_path):
        clock = FakeClock()
        path = str(tmp_path / "hb.json")
        monitor = LivenessMonitor(timeout=5.0, clock=clock)
        monitor.watch("s0", path)
        # Never wrote a beat: goes stale from watch time.
        clock.advance(6.0)
        monitor.observe("s0")
        assert monitor.stale("s0")
        write_heartbeat(
            path, Heartbeat(seq=1, shard_index=0, pid=1, phase="record", done=1, total=2)
        )
        monitor.observe("s0")
        assert not monitor.stale("s0")
        # Same seq re-read: age keeps growing — progress, not presence.
        clock.advance(6.0)
        monitor.observe("s0")
        assert monitor.stale("s0")
        write_heartbeat(
            path, Heartbeat(seq=2, shard_index=0, pid=1, phase="record", done=2, total=2)
        )
        monitor.observe("s0")
        assert not monitor.stale("s0")


# -- the chaos acceptance run ------------------------------------------


class TestFabricChaos:
    def test_k8_chaos_run_matches_clean_oracle_byte_for_byte(self, tmp_path):
        plan_path, plans = write_plan(tmp_path, 8)
        for shard_index in range(8):
            assert plans[0].manifest(shard_index).trial_indices(), (
                "chaos preconditions: every shard must own at least one trial"
            )
        result = run_fabric(
            plan_path,
            str(tmp_path / "cache"),
            work_dir=str(tmp_path / "work"),
            max_parallel=4,
            heartbeat_timeout=6.0,
            poll_interval=0.05,
            backoff=BackoffPolicy(base=0.05, max_delay=0.5, max_attempts=3),
            faults=[
                "kill@1:at=1",
                "hang@2:at=1,secs=600",
                "corrupt@3:at=1",
            ],
        )
        assert result.ok, result.summary()
        assert result.gap_manifest is None
        states = {o.shard_index: o for o in result.outcomes}
        assert all(o.state == "done" for o in result.outcomes)
        # Each faulted shard burned its injected failure plus one clean
        # retry; the untouched shards finished first try.
        for shard_index in (1, 2, 3):
            assert states[shard_index].attempts == 2, states[shard_index]
        for shard_index in (0, 4, 5, 6, 7):
            assert states[shard_index].attempts == 1, states[shard_index]
        assert result.launched == 11  # 8 shards + 3 retries

        # The oracle: the same spec, single host, fresh cache.
        oracle_cache = TrialCache(str(tmp_path / "oracle"))
        oracle_reports = [
            run_experiment(plan.spec, cache=oracle_cache, batch_size=1)
            for plan in plans
        ]
        fabric_export = str(tmp_path / "fabric.jsonl")
        oracle_export = str(tmp_path / "oracle.jsonl")
        TrialCache(str(tmp_path / "cache")).export(fabric_export)
        oracle_cache.export(oracle_export)
        with open(fabric_export, "rb") as handle:
            fabric_bytes = handle.read()
        with open(oracle_export, "rb") as handle:
            oracle_bytes = handle.read()
        assert fabric_bytes == oracle_bytes
        assert len(fabric_bytes) > 0
        # And the replayed reports carry the identical sweep.
        for fabric_report, oracle_report in zip(result.reports, oracle_reports):
            assert fabric_report.sweep.points == oracle_report.sweep.points

    def test_degrades_to_gap_manifest_and_resumes_from_the_board(self, tmp_path):
        plan_path, plans = write_plan(tmp_path, 2)
        work_dir = str(tmp_path / "work")
        cache_dir = str(tmp_path / "cache")
        result = run_fabric(
            plan_path,
            cache_dir,
            work_dir=work_dir,
            max_parallel=2,
            heartbeat_timeout=6.0,
            poll_interval=0.05,
            backoff=BackoffPolicy(base=0.05, max_delay=0.5, max_attempts=2),
            faults=["kill@0:at=1,attempts=1+2"],
        )
        assert not result.ok
        assert result.reports is None
        gap = result.gap_manifest
        shard0_trials = set(plans[0].manifest(0).trial_indices())
        assert gap["trials_missing"] == len(gap["specs"][0]["missing_indices"])
        assert set(gap["specs"][0]["missing_indices"]) <= shard0_trials
        assert gap["failed_shards"][0]["shard_index"] == 0
        assert gap["failed_shards"][0]["attempts"] == 2
        with open(os.path.join(work_dir, "gaps.json"), encoding="utf-8") as handle:
            assert json.load(handle) == gap
        # Shard 1's records survived the degraded run.
        assert result.records_merged > 0

        # A fresh launcher resumes from the persisted board: the done
        # shard is not relaunched, the failed one gets a clean round.
        resumed = run_fabric(
            plan_path,
            cache_dir,
            work_dir=work_dir,
            max_parallel=2,
            heartbeat_timeout=6.0,
            poll_interval=0.05,
            backoff=BackoffPolicy(base=0.05, max_delay=0.5, max_attempts=4),
            retry_failed=True,
        )
        assert resumed.ok, resumed.summary()
        assert resumed.launched == 1
        states = {o.shard_index: o for o in resumed.outcomes}
        assert states[0].attempts == 3
        assert states[1].attempts == 1
        # The stale gap manifest does not outlive the successful resume.
        assert not os.path.exists(os.path.join(work_dir, "gaps.json"))

    def test_refuses_a_foreign_work_dir(self, tmp_path):
        plan_path, _plans = write_plan(tmp_path, 2, name="a.json")
        other = registry_spec(
            "test/degree-parity/parity@cycle",
            "parity",
            "degree-parity",
            "cycle",
            ns=(8,),
            seeds=(0,),
        )
        other_path, _ = write_plan(tmp_path, 2, spec=other, name="b.json")
        work_dir = str(tmp_path / "work")
        result = run_fabric(
            plan_path,
            str(tmp_path / "cache"),
            work_dir=work_dir,
            max_parallel=2,
            poll_interval=0.05,
        )
        assert result.ok
        with pytest.raises(ValueError, match="different plan"):
            run_fabric(
                other_path,
                str(tmp_path / "cache"),
                work_dir=work_dir,
                max_parallel=2,
                poll_interval=0.05,
            )


# -- CLI surface -------------------------------------------------------


class TestCliFabric:
    def test_fabric_subcommand_clean_run(self, tmp_path, capsys):
        plan_path, _plans = write_plan(tmp_path, 2)
        code = engine_main(
            [
                "fabric",
                "--plan", plan_path,
                "--cache-dir", str(tmp_path / "cache"),
                "--work-dir", str(tmp_path / "work"),
                "--max-parallel", "2",
                "--poll-interval", "0.05",
                "--json", str(tmp_path / "fabric.json"),
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "complete" in out
        with open(tmp_path / "fabric.json", encoding="utf-8") as handle:
            payload = json.load(handle)
        assert payload["ok"] is True
        assert payload["num_shards"] == 2
        assert [o["state"] for o in payload["outcomes"]] == ["done", "done"]

    def test_fabric_subcommand_degraded_exits_4(self, tmp_path, capsys):
        plan_path, _plans = write_plan(tmp_path, 2)
        code = engine_main(
            [
                "fabric",
                "--plan", plan_path,
                "--cache-dir", str(tmp_path / "cache"),
                "--work-dir", str(tmp_path / "work"),
                "--max-parallel", "2",
                "--poll-interval", "0.05",
                "--max-attempts", "1",
                "--backoff-base", "0.05",
                "--inject", "kill@0:at=1",
            ]
        )
        captured = capsys.readouterr()
        assert code == 4
        assert "DEGRADED" in captured.out
        assert "gap manifest" in captured.err
        assert os.path.isfile(tmp_path / "work" / "gaps.json")

    def test_fabric_bad_plan_is_a_structured_setup_error(self, tmp_path, capsys):
        code = engine_main(
            ["fabric", "--plan", str(tmp_path / "nope.json")]
        )
        assert code == 2
        err = capsys.readouterr().err
        assert err.startswith("error: command=fabric")
        assert "cause=" in err


class TestCliErrorHygiene:
    def test_run_shard_setup_error_is_one_structured_line(self, tmp_path, capsys):
        code = engine_main(
            ["run-shard", "--plan", str(tmp_path / "nope.json"), "--shard", "0"]
        )
        assert code == 2
        err = capsys.readouterr().err.strip()
        assert err.startswith("error: command=run-shard")
        assert "cause=FileNotFoundError" in err
        assert "\n" not in err

    def test_run_shard_json_errors_emits_parseable_json(self, tmp_path, capsys):
        plan_path, _plans = write_plan(tmp_path, 2)
        code = engine_main(
            [
                "run-shard",
                "--plan", plan_path,
                "--shard", "7/2",
                "--json-errors",
            ]
        )
        assert code == 2
        payload = json.loads(capsys.readouterr().err.strip())
        error = payload["error"]
        assert error["command"] == "run-shard"
        assert error["experiment"] == "test-fabric"
        assert error["cause"] == "ValueError"
        assert error["exit_code"] == 2

    def test_run_shard_runtime_failure_exits_3_with_shard_attribution(
        self, tmp_path, capsys
    ):
        failing = ExperimentSpec(
            name="test/fabric-fail",
            solver=solver_ref("parity"),
            generator=family_ref("cycle"),
            verifier="tests.test_fabric:_always_fail",
            ns=(8,),
            seeds=(0,),
        )
        plan_path, _plans = write_plan(tmp_path, 1, spec=failing)
        code = engine_main(
            [
                "run-shard",
                "--plan", plan_path,
                "--shard", "0/1",
                "--cache-dir", str(tmp_path / "cache"),
                "--json-errors",
            ]
        )
        assert code == 3
        payload = json.loads(capsys.readouterr().err.strip())
        error = payload["error"]
        assert error["shard"] == 0
        assert error["cause"] == "AssertionError"
        assert "nope" in error["message"]

    def test_merge_missing_cache_is_structured(self, tmp_path, capsys):
        plan_path, _plans = write_plan(tmp_path, 2)
        code = engine_main(
            [
                "merge",
                "--plan", plan_path,
                "--cache-dir", str(tmp_path / "missing"),
            ]
        )
        assert code == 2
        assert capsys.readouterr().err.startswith("error: command=merge")

    def test_status_heartbeats_view(self, tmp_path, capsys):
        plan_path, _plans = write_plan(tmp_path, 2)
        cache_dir = str(tmp_path / "cache")
        os.makedirs(cache_dir)
        hb_dir = tmp_path / "work"
        os.makedirs(hb_dir)
        write_heartbeat(
            str(hb_dir / "shard-0.hb.json"),
            Heartbeat(seq=4, shard_index=0, pid=7, phase="record", done=3, total=5),
        )
        code = engine_main(
            [
                "status",
                "--plan", plan_path,
                "--cache-dir", cache_dir,
                "--heartbeats", str(hb_dir),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "heartbeats in" in out
        assert "3/5" in out


def _always_fail(instance, result):
    raise AssertionError("nope")


class TestShardHeartbeatAndInjectFlags:
    def test_run_shard_publishes_heartbeat_file(self, tmp_path, capsys):
        plan_path, plans = write_plan(tmp_path, 2)
        hb_path = str(tmp_path / "hb.json")
        code = engine_main(
            [
                "run-shard",
                "--plan", plan_path,
                "--shard", "0/2",
                "--cache-dir", str(tmp_path / "cache"),
                "--heartbeat", hb_path,
            ]
        )
        assert code == 0
        beat = read_heartbeat(hb_path)
        assert beat.phase == "done"
        assert beat.total == len(plans[0].manifest(0).trial_indices())
        assert beat.done == beat.total

    def test_run_shard_inject_corrupt_damages_the_export(self, tmp_path, capsys):
        plan_path, _plans = write_plan(tmp_path, 2)
        out_root = str(tmp_path / "shard0")
        code = engine_main(
            [
                "run-shard",
                "--plan", plan_path,
                "--shard", "0/2",
                "--cache-dir", str(tmp_path / "cache"),
                "--cache-out", out_root,
                "--inject", "corrupt@0:at=1",
            ]
        )
        assert code == 0  # the damage is silent — that's the point
        probe = TrialCache(str(tmp_path / "cache"), isolation=out_root)
        trials = _plans_trials(plan_path)
        present = sum(probe.contains(t.key()) for t in trials)
        assert present == len(trials) - 1


def _plans_trials(plan_path):
    with open(plan_path, encoding="utf-8") as handle:
        _experiment, plans = load_plan_file(json.load(handle))
    trials = []
    for plan in plans:
        all_trials = plan.spec.trials()
        for shard_index in (0,):
            trials += [all_trials[i] for i in plan.manifest(shard_index).trial_indices()]
    return trials
