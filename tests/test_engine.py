"""Tests for the experiment-orchestration engine.

The three load-bearing properties:

* determinism — the same spec yields identical trial keys and
  bit-identical sweep points at any worker count;
* caching — a second run of the same spec computes nothing and
  replays every trial from disk;
* compatibility — the legacy ``run_sweep`` shim reports exactly what
  the engine reports.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.analysis import run_sweep
from repro.analysis.sweep import SweepPoint
from repro.engine import (
    ExperimentSpec,
    TrialCache,
    TrialSpec,
    build_experiment,
    execute_trial,
    grid,
    resolve_ref,
    run_experiment,
    run_tasks,
)
from repro.engine.cli import main as engine_main
from repro.generators.hard import cubic_instance
from repro.problems import DeterministicSinklessSolver

SPEC = ExperimentSpec(
    name="test/sinkless-det",
    solver="repro.problems:DeterministicSinklessSolver",
    generator="repro.generators.hard:cubic_instance",
    verifier="repro.engine.experiments:verify_sinkless",
    ns=(16, 32, 64),
    seeds=(0, 1),
)


class TestSpec:
    def test_trial_grid_order(self):
        trials = SPEC.trials()
        assert [(t.n, t.seed) for t in trials] == [
            (16, 0), (16, 1), (32, 0), (32, 1), (64, 0), (64, 1)
        ]

    def test_keys_are_stable_and_distinct(self):
        keys = [t.key() for t in SPEC.trials()]
        assert keys == [t.key() for t in SPEC.trials()]
        assert len(set(keys)) == len(keys)

    def test_key_ignores_display_name(self):
        renamed = ExperimentSpec(
            name="other-name",
            solver=SPEC.solver,
            generator=SPEC.generator,
            verifier=SPEC.verifier,
            ns=SPEC.ns,
            seeds=SPEC.seeds,
        )
        assert [t.key() for t in renamed.trials()] == [
            t.key() for t in SPEC.trials()
        ]

    def test_key_depends_on_every_field(self):
        base = SPEC.trials()[0]
        variants = [
            TrialSpec(base.solver, base.generator, base.verifier, 17, base.seed),
            TrialSpec(base.solver, base.generator, base.verifier, base.n, 9),
            TrialSpec("m:other", base.generator, base.verifier, base.n, base.seed),
            TrialSpec(
                base.solver, base.generator, base.verifier,
                base.n, base.seed, (("k", 1),),
            ),
        ]
        keys = {base.key()} | {v.key() for v in variants}
        assert len(keys) == 5

    def test_payload_roundtrip(self):
        trial = SPEC.trials()[3]
        assert TrialSpec.from_payload(trial.to_payload()) == trial

    def test_empty_grids_rejected(self):
        with pytest.raises(ValueError):
            ExperimentSpec("e", "m:s", "m:g", ns=(), seeds=(0,))
        with pytest.raises(ValueError):
            ExperimentSpec("e", "m:s", "m:g", ns=(8,), seeds=())

    def test_resolve_ref(self):
        assert resolve_ref("repro.generators.hard:cubic_instance") is cubic_instance
        with pytest.raises(ValueError):
            resolve_ref("no-colon")

    def test_grid_helper(self):
        assert grid(64, 512) == (64, 128, 256, 512)


class TestDeterminism:
    def test_serial_equals_parallel(self):
        serial = run_experiment(SPEC, workers=1)
        parallel = run_experiment(SPEC, workers=4)
        assert serial.sweep == parallel.sweep
        assert serial.records == parallel.records

    def test_execute_trial_reproducible(self):
        trial = SPEC.trials()[-1]
        assert execute_trial(trial) == execute_trial(trial)

    def test_randomized_solver_deterministic_across_workers(self):
        spec = ExperimentSpec(
            name="test/sinkless-rand",
            solver="repro.problems:RandomizedSinklessSolver",
            generator="repro.generators.hard:cubic_instance",
            ns=(32, 64),
            seeds=(0, 1, 2),
        )
        assert run_experiment(spec, workers=1).sweep == run_experiment(
            spec, workers=3
        ).sweep


class TestCache:
    def test_cold_then_warm(self, tmp_path):
        cache = TrialCache(str(tmp_path / "cache"))
        cold = run_experiment(SPEC, workers=2, cache=cache)
        assert cold.cache_hits == 0
        assert cold.computed == cold.trials_total == 6

        warm = run_experiment(SPEC, workers=2, cache=TrialCache(str(tmp_path / "cache")))
        assert warm.cache_hits == warm.trials_total == 6
        assert warm.computed == 0
        assert warm.sweep == cold.sweep
        assert warm.records == cold.records

    def test_partial_overlap_computes_only_delta(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        run_experiment(SPEC, cache=TrialCache(cache_dir))
        wider = ExperimentSpec(
            name=SPEC.name,
            solver=SPEC.solver,
            generator=SPEC.generator,
            verifier=SPEC.verifier,
            ns=SPEC.ns + (128,),
            seeds=SPEC.seeds,
        )
        report = run_experiment(wider, cache=TrialCache(cache_dir))
        assert report.cache_hits == 6
        assert report.computed == 2

    def test_shards_are_jsonl(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        run_experiment(SPEC, cache=TrialCache(cache_dir))
        shards = [f for f in os.listdir(cache_dir) if f.endswith(".jsonl")]
        assert shards
        with open(os.path.join(cache_dir, shards[0])) as handle:
            entry = json.loads(handle.readline())
        assert set(entry) == {"key", "record"}
        assert "rounds" in entry["record"]

    def test_torn_tail_line_is_ignored(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        run_experiment(SPEC, cache=TrialCache(cache_dir))
        shard = next(
            os.path.join(cache_dir, f)
            for f in os.listdir(cache_dir)
            if f.endswith(".jsonl")
        )
        with open(shard, "a") as handle:
            handle.write('{"key": "deadbeef", "record"')  # torn write
        warm = run_experiment(SPEC, cache=TrialCache(cache_dir))
        assert warm.cache_hits == warm.trials_total

    def test_verifier_runs_on_computed_trials(self, tmp_path):
        bad = ExperimentSpec(
            name="test/bad-verify",
            solver=SPEC.solver,
            generator=SPEC.generator,
            verifier="tests.test_engine:_always_fail",
            ns=(16,),
            seeds=(0,),
        )
        with pytest.raises(AssertionError, match="nope"):
            run_experiment(bad, workers=1)


def _always_fail(instance, result):
    raise AssertionError("nope")


class TestPool:
    def test_preserves_order(self):
        assert run_tasks(_double, list(range(20)), workers=4) == [
            2 * i for i in range(20)
        ]

    def test_serial_fallback_for_unpicklable(self):
        # A lambda cannot cross a process boundary; the pool must fall
        # back to an in-process loop rather than fail.
        assert run_tasks(lambda x: x + 1, [1, 2, 3], workers=4) == [2, 3, 4]


def _double(x):
    return 2 * x


class TestSweepShim:
    def test_run_sweep_matches_engine(self):
        sweep = run_sweep(
            DeterministicSinklessSolver(), cubic_instance, [16, 32], seeds=(0, 1)
        )
        engine_sweep = run_experiment(
            ExperimentSpec(
                name="shim-check",
                solver="repro.problems:DeterministicSinklessSolver",
                generator="repro.generators.hard:cubic_instance",
                ns=(16, 32),
                seeds=(0, 1),
            ),
            workers=4,
        ).sweep
        assert sweep.points == engine_sweep.points

    def test_empty_seeds_raise(self):
        with pytest.raises(ValueError, match="at least one seed"):
            run_sweep(
                DeterministicSinklessSolver(), cubic_instance, [16], seeds=()
            )

    def test_sweep_point_rejects_zero_trials(self):
        with pytest.raises(ValueError, match="at least one trial"):
            SweepPoint(n=16, trials=0, rounds_mean=0.0, rounds_max=0, rounds_min=0)


class TestNamedExperiments:
    def test_registry_builds_every_experiment(self):
        for name in ("sinkless", "padding", "gadget", "landscape"):
            specs = build_experiment(name, max_n=128)
            assert specs
            for spec in specs:
                assert spec.trials()

    def test_unknown_experiment(self):
        with pytest.raises(ValueError, match="unknown experiment"):
            build_experiment("nope")

    def test_cli_smoke(self, tmp_path, capsys):
        out_json = tmp_path / "report.json"
        code = engine_main(
            [
                "--experiment",
                "sinkless",
                "--workers",
                "2",
                "--max-n",
                "64",
                "--cache-dir",
                str(tmp_path / "cache"),
                "--json",
                str(out_json),
            ]
        )
        assert code == 0
        captured = capsys.readouterr().out
        assert "sinkless/sinkless-orientation/sinkless-det@cubic" in captured
        assert "cache hits" in captured
        payload = json.loads(out_json.read_text())
        assert payload["experiment"] == "sinkless"
        assert payload["reports"][0]["points"]
