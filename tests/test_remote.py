"""Remote shard transport: exec targets, integrity-checked pulls, chaos.

The acceptance property extends the fabric's: a K=8 chaos run whose
shards execute over ``cmd://`` targets and whose exports travel a
fault-injected HTTP link — killed shards, stalled responses, truncated
and garbled transfers — recovers via retries and Range resume and
merges byte-identical to the K=1 oracle, while a *persistently*
corrupted export is quarantined (never merged) and reported in the gap
manifest.  Around it, the unit surface: target URI parsing and command
resolution, manifested exports, every ``net-*`` fault mode against a
live loopback server, the ``--dry-run`` renderer, and the shm-core
sweep for shards that die mid-chunk with exported topology cores.
"""

from __future__ import annotations

import glob
import hashlib
import json
import os

import pytest

from repro.engine.cache import TrialCache, load_export_manifest
from repro.engine.cli import main as engine_main
from repro.engine.fabric import BackoffPolicy, run_fabric
from repro.engine.faults import NetFaultInjector, parse_fault_specs, shard_from_path
from repro.engine.remote import (
    ExecTarget,
    ExportServer,
    PullPolicy,
    assign_targets,
    local_argv,
    pull_export,
    shard_context,
)
from repro.engine.runner import plan_experiment, run_experiment
from repro.engine.shard import dump_plan_file
from repro.engine.spec import ExperimentSpec
from repro.generators import cycle
from repro.kernels import shm
from repro.runtime.entrypoints import family_ref, solver_ref, verifier_ref


def registry_spec(name, solver, problem, family, ns, seeds):
    return ExperimentSpec(
        name=name,
        solver=solver_ref(solver),
        generator=family_ref(family),
        verifier=verifier_ref(problem),
        ns=ns,
        seeds=seeds,
    )


PARITY_SPEC = registry_spec(
    "test/degree-parity/parity@cycle",
    "parity",
    "degree-parity",
    "cycle",
    ns=(8, 12, 16),
    seeds=(0, 1, 2),
)

#: A wrapper template equivalent to local://, but exercising the whole
#: cmd:// path: format substitution, shlex splitting, shell exec.
CMD_LOCALHOST = (
    "cmd://sh -c \"exec {python} -m repro.engine run-shard --plan {plan} "
    "--shard {shard}/{num_shards} --workers {workers} --cache-dir {cache_dir} "
    "--cache-out {out} --heartbeat {heartbeat} --kernels {kernels} "
    "--json-errors -q\""
)


def write_plan(tmp_path, num_shards, spec=PARITY_SPEC, name="plan.json"):
    plans = [plan_experiment(spec, num_shards=num_shards, batch_size=1)]
    path = str(tmp_path / name)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(dump_plan_file("test-remote", plans), handle)
    return path, plans


def cache_fingerprint(root):
    """(key -> canonical record) for byte-level cache comparison."""
    cache = TrialCache(root)
    cache.load_all()
    return {
        key: json.dumps(record, sort_keys=True)
        for key, record in cache._index.items()
    }


# -- exec targets ------------------------------------------------------


class TestExecTarget:
    def test_parse_local_default(self):
        target = ExecTarget.parse("local://")
        assert target.scheme == "local"
        assert target.concurrency is None and target.timeout is None

    def test_parse_fragment_options(self):
        target = ExecTarget.parse("local://#concurrency=2,timeout=90")
        assert target.concurrency == 2
        assert target.timeout == 90.0

    def test_parse_cmd_template(self):
        target = ExecTarget.parse("cmd://ssh host run {plan} {shard}#timeout=5")
        assert target.scheme == "cmd"
        assert target.template == "ssh host run {plan} {shard}"
        assert target.timeout == 5.0

    @pytest.mark.parametrize(
        "uri, match",
        [
            ("rsh://host", "not 'local://' or 'cmd://"),
            ("local://echo hi", "takes no command"),
            ("cmd://", "needs a command template"),
            ("cmd://run {plan}", "must reference {shard}"),
            ("cmd://run {plan} {shard} {hostname}", "unknown placeholder"),
            ("cmd://run {plan} {shard}#color=red", "unknown target option"),
            ("local://#concurrency=0", "must be >= 1"),
            ("local://#timeout=0", "must be > 0"),
        ],
    )
    def test_bad_targets_rejected(self, uri, match):
        with pytest.raises(ValueError, match=match):
            ExecTarget.parse(uri)

    def test_local_command_is_run_shard_argv(self, tmp_path):
        ctx = shard_context("plan.json", 1, 4, "cache", str(tmp_path))
        target = ExecTarget.parse("local://")
        argv = target.command(ctx)
        assert argv == local_argv(ctx)
        assert "--shard" in argv and argv[argv.index("--shard") + 1] == "1/4"

    def test_cmd_command_substitutes_and_splits(self, tmp_path):
        ctx = shard_context("plan.json", 2, 8, "cache", str(tmp_path))
        target = ExecTarget.parse(
            "cmd://ssh worker-3 repro-shard {plan} {shard}/{num_shards}"
        )
        assert target.command(ctx) == [
            "ssh", "worker-3", "repro-shard", "plan.json", "2/8",
        ]

    def test_assign_round_robin_shares_instances(self):
        targets = ["cmd://a {plan} {shard}", "cmd://b {plan} {shard}"]
        dealt = assign_targets(5, targets)
        assert [t.template[0] for t in dealt] == ["a", "b", "a", "b", "a"]
        # shard 0 and 2 share one parsed instance: identity is what
        # groups a target's concurrency accounting in the launcher
        assert dealt[0] is dealt[2] is dealt[4]

    def test_assign_defaults_to_local(self):
        dealt = assign_targets(3)
        assert all(t.scheme == "local" for t in dealt)


# -- manifested exports ------------------------------------------------


def _filled_cache(root, items):
    cache = TrialCache(str(root))
    for key, record in items:
        cache.put(key, record)
    return cache


class TestExportDir:
    def test_manifest_names_every_file_with_true_digests(self, tmp_path):
        cache = _filled_cache(
            tmp_path / "src", [("aa1", {"x": 1}), ("ab2", {"x": 2}), ("cc3", {"x": 3})]
        )
        dest = str(tmp_path / "export")
        manifest = cache.export_dir(dest)
        assert manifest["records_total"] == 3
        loaded = load_export_manifest(dest)
        assert loaded["files"] == manifest["files"]
        for name, entry in manifest["files"].items():
            with open(os.path.join(dest, name), "rb") as handle:
                blob = handle.read()
            assert hashlib.sha256(blob).hexdigest() == entry["sha256"]
            assert len(blob) == entry["bytes"]

    def test_export_dir_merges_back_identically(self, tmp_path):
        items = [("aa1", {"x": 1}), ("bb2", {"y": [2, 3]})]
        cache = _filled_cache(tmp_path / "src", items)
        dest = str(tmp_path / "export")
        cache.export_dir(dest)
        merged = TrialCache(str(tmp_path / "merged"))
        assert merged.merge(dest) == 2
        for key, record in items:
            assert merged.get(key) == record


# -- pulling over a live loopback server -------------------------------


FAST_PULL = PullPolicy(timeout=2.0, max_attempts=4, backoff_base=0.05, jitter=0.0)


@pytest.fixture()
def export_tree(tmp_path):
    """A served export of 6 records in 3+ files, plus its fingerprint."""
    items = [(f"{c}{c}{i}", {"v": i}) for i, c in enumerate("aabbcc")]
    cache = _filled_cache(tmp_path / "src", items)
    dest = str(tmp_path / "exports" / "shard-0")
    cache.export_dir(dest)
    return str(tmp_path / "exports"), items


class TestPullExport:
    def test_clean_round_trip(self, tmp_path, export_tree):
        root, items = export_tree
        with ExportServer(root) as server:
            result = pull_export(
                server.url + "/shard-0", str(tmp_path / "pull"), FAST_PULL
            )
        assert result.ok and not result.quarantined
        assert result.records == len(items)
        merged = TrialCache(str(tmp_path / "merged"))
        merged.merge(result.dest)
        for key, record in items:
            assert merged.get(key) == record

    @pytest.mark.parametrize(
        "spec, resumes",
        [
            ("net-truncate@0:attempts=1", True),
            ("net-drop@0:attempts=1", True),
            ("net-garble@0:attempts=1", False),  # poisoned -> full refetch
            ("net-5xx@0:attempts=1+2", False),
        ],
    )
    def test_transient_faults_recover(self, tmp_path, export_tree, spec, resumes):
        root, items = export_tree
        injector = NetFaultInjector(parse_fault_specs(spec), seed=7)
        with ExportServer(root, injector=injector) as server:
            result = pull_export(
                server.url + "/shard-0", str(tmp_path / "pull"), FAST_PULL
            )
        assert result.ok, result.summary()
        assert result.records == len(items)
        assert max(file.attempts for file in result.files) > 1
        if resumes:
            assert sum(file.resumed_bytes for file in result.files) > 0

    def test_stall_times_out_and_retries(self, tmp_path, export_tree):
        root, items = export_tree
        injector = NetFaultInjector(
            parse_fault_specs("net-stall@0:attempts=1,secs=5"), seed=0
        )
        policy = PullPolicy(timeout=0.5, max_attempts=3, backoff_base=0.05, jitter=0.0)
        with ExportServer(root, injector=injector) as server:
            result = pull_export(
                server.url + "/shard-0", str(tmp_path / "pull"), policy
            )
        assert result.ok and result.records == len(items)

    def test_persistent_corruption_quarantined_never_merged(
        self, tmp_path, export_tree
    ):
        root, items = export_tree
        # Corrupt one record file on disk; its manifest digest is now a
        # standing lie no number of retries can fix.
        victim = sorted(glob.glob(os.path.join(root, "shard-0", "*.jsonl")))[0]
        with open(victim, "a", encoding="utf-8") as handle:
            handle.write('{"key": "evil", "record": {"v": 666}}\n')
        with ExportServer(root) as server:
            result = pull_export(
                server.url + "/shard-0", str(tmp_path / "pull"), FAST_PULL
            )
        assert not result.ok
        names = [file.name for file in result.quarantined]
        assert names == [os.path.basename(victim)]
        # quarantined for forensics, invisible to merge
        qpath = os.path.join(result.dest, "quarantine", names[0])
        assert os.path.isfile(qpath)
        merged = TrialCache(str(tmp_path / "merged"))
        merged.merge(result.dest)
        assert merged.get("evil") is None
        assert result.records < len(items)

    def test_unreachable_endpoint_reports_error(self, tmp_path):
        policy = PullPolicy(timeout=0.5, max_attempts=2, backoff_base=0.05)
        result = pull_export(
            "http://127.0.0.1:9/nope", str(tmp_path / "pull"), policy
        )
        assert result.error is not None and not result.ok

    def test_traversal_refused(self, tmp_path, export_tree):
        import urllib.error
        import urllib.request

        root, _ = export_tree
        (tmp_path / "secret.txt").write_text("keep out")
        with ExportServer(root) as server:
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(
                    server.url + "/shard-0/%2e%2e/%2e%2e/secret.txt", timeout=2.0
                )
        assert excinfo.value.code == 404

    def test_shard_mapping_from_paths(self):
        assert shard_from_path("shard-3/aa.jsonl") == 3
        assert shard_from_path("exports/shard-12/bb.jsonl") == 12
        assert shard_from_path("aa.jsonl") == 0  # flat root


# -- CLI: dry-run, export, serve, merge --from-url ---------------------


class TestRemoteCLI:
    def test_fabric_dry_run_prints_commands_without_spawning(
        self, tmp_path, capsys
    ):
        plan_path, _ = write_plan(tmp_path, num_shards=3)
        rc = engine_main(
            [
                "fabric", "--plan", plan_path,
                "--cache-dir", str(tmp_path / "cache"),
                "--dry-run",
                "--target", "cmd://ssh h0 run {plan} {shard}#concurrency=2",
                "--target", "local://",
            ]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "shard 0/3: target cmd://ssh h0 run {plan} {shard}" in out
        assert "shard 1/3: target local://" in out
        assert "shard 2/3: target cmd://" in out  # round-robin wraps
        assert f"ssh h0 run {plan_path} 0" in out
        assert "run-shard" in out  # the local:// resolved argv
        # nothing spawned, no fabric state conjured
        assert not os.path.exists(plan_path + ".fabric")

    def test_bad_target_uri_is_a_setup_error(self, tmp_path, capsys):
        plan_path, _ = write_plan(tmp_path, num_shards=2)
        rc = engine_main(
            [
                "fabric", "--plan", plan_path,
                "--cache-dir", str(tmp_path / "cache"),
                "--target", "teleport://elsewhere",
            ]
        )
        assert rc == 2
        assert "not 'local://' or 'cmd://" in capsys.readouterr().err

    def test_cache_export_cli(self, tmp_path, capsys):
        _filled_cache(tmp_path / "cache", [("aa1", {"x": 1}), ("bb2", {"x": 2})])
        dest = str(tmp_path / "export")
        rc = engine_main(
            ["cache", "--cache-dir", str(tmp_path / "cache"), "--export", dest]
        )
        assert rc == 0
        assert "2 record(s)" in capsys.readouterr().out
        assert load_export_manifest(dest)["records_total"] == 2

    def _ran_plan_with_exports(self, tmp_path):
        """Run the plan locally, export the cache, return all three."""
        plan_path, plans = write_plan(tmp_path, num_shards=2)
        cache_dir = str(tmp_path / "ran")
        run_experiment(
            PARITY_SPEC, workers=1, cache=TrialCache(cache_dir),
            batch_size=plans[0].batch_size,
        )
        export_root = str(tmp_path / "exports")
        TrialCache(cache_dir).export_dir(os.path.join(export_root, "shard-0"))
        return plan_path, cache_dir, export_root

    def test_merge_from_url_clean(self, tmp_path, capsys):
        plan_path, cache_dir, export_root = self._ran_plan_with_exports(tmp_path)
        merged_dir = str(tmp_path / "merged")
        with ExportServer(export_root) as server:
            rc = engine_main(
                [
                    "merge", "--plan", plan_path,
                    "--cache-dir", merged_dir,
                    "--from-url", server.url + "/shard-0",
                    "--pull-backoff", "0.05", "-q",
                ]
            )
        out = capsys.readouterr().out
        assert rc == 0
        assert "1 pulled export(s)" in out
        assert cache_fingerprint(merged_dir) == cache_fingerprint(cache_dir)

    def test_merge_from_url_quarantine_degrades_to_gaps(self, tmp_path, capsys):
        plan_path, cache_dir, export_root = self._ran_plan_with_exports(tmp_path)
        victim = sorted(
            glob.glob(os.path.join(export_root, "shard-0", "*.jsonl"))
        )[0]
        with open(victim, "ab") as handle:
            handle.write(b"garbage tail\n")
        merged_dir = str(tmp_path / "merged")
        with ExportServer(export_root) as server:
            rc = engine_main(
                [
                    "merge", "--plan", plan_path,
                    "--cache-dir", merged_dir,
                    "--from-url", server.url + "/shard-0",
                    "--pull-attempts", "2", "--pull-backoff", "0.05", "-q",
                ]
            )
        captured = capsys.readouterr()
        assert rc == 4
        assert "gap manifest" in captured.err
        with open(os.path.join(merged_dir, "gaps.json"), encoding="utf-8") as f:
            gap = json.load(f)
        assert gap["trials_missing"] > 0
        assert gap["quarantined"][0]["file"] == os.path.basename(victim)
        assert os.path.isfile(gap["quarantined"][0]["quarantine"])
        # every surviving record merged; none of the quarantined bytes
        good = cache_fingerprint(merged_dir)
        oracle = cache_fingerprint(cache_dir)
        assert set(good) < set(oracle)
        assert all(good[key] == oracle[key] for key in good)

    def test_merge_from_url_unreachable_degrades(self, tmp_path, capsys):
        plan_path, _ = write_plan(tmp_path, num_shards=2)
        merged_dir = str(tmp_path / "merged")
        rc = engine_main(
            [
                "merge", "--plan", plan_path,
                "--cache-dir", merged_dir,
                "--from-url", "http://127.0.0.1:9/shard-0",
                "--pull-attempts", "2", "--pull-backoff", "0.05",
                "--pull-timeout", "0.5", "-q",
            ]
        )
        assert rc == 4
        with open(os.path.join(merged_dir, "gaps.json"), encoding="utf-8") as f:
            gap = json.load(f)
        assert gap["failed_sources"][0]["url"].startswith("http://127.0.0.1:9")


# -- fabric over cmd:// targets ----------------------------------------


class TestFabricTargets:
    def test_cmd_target_matches_local_run(self, tmp_path):
        plan_path, _ = write_plan(tmp_path, num_shards=2)
        local = run_fabric(
            plan_path,
            str(tmp_path / "cache-local"),
            work_dir=str(tmp_path / "work-local"),
            backoff=BackoffPolicy(base=0.1, max_attempts=2),
        )
        remote = run_fabric(
            plan_path,
            str(tmp_path / "cache-cmd"),
            work_dir=str(tmp_path / "work-cmd"),
            backoff=BackoffPolicy(base=0.1, max_attempts=2),
            targets=[CMD_LOCALHOST + "#concurrency=2"],
        )
        assert local.ok and remote.ok
        assert cache_fingerprint(str(tmp_path / "cache-cmd")) == cache_fingerprint(
            str(tmp_path / "cache-local")
        )

    def test_target_timeout_kills_and_fails_attempt(self, tmp_path):
        plan_path, _ = write_plan(tmp_path, num_shards=1)
        # A wrapper that never starts the shard: heartbeats never appear,
        # but the target timeout reaps it long before heartbeat staleness.
        stuck = "cmd://sh -c \"sleep 600 # {plan} {shard}\"#timeout=0.5"
        result = run_fabric(
            plan_path,
            str(tmp_path / "cache"),
            work_dir=str(tmp_path / "work"),
            heartbeat_timeout=120.0,
            backoff=BackoffPolicy(base=0.05, max_attempts=1),
            targets=[stuck],
        )
        assert not result.ok
        assert result.outcomes[0].state == "failed"
        assert "target timeout" in result.outcomes[0].cause

    def test_vector_kill_salvages_and_sweeps_shm(self, tmp_path, monkeypatch):
        """PR 7 x PR 8: a shard on a cmd:// target dies mid-chunk with
        exported topology cores; the retry salvages its durable chunks
        and the launcher sweeps the leaked segments."""
        monkeypatch.setenv("REPRO_SHM_CORES", "1")
        before = set(glob.glob("/dev/shm/repro-core-*"))
        plan_path, _ = write_plan(tmp_path, num_shards=2)
        result = run_fabric(
            plan_path,
            str(tmp_path / "cache"),
            work_dir=str(tmp_path / "work"),
            shard_workers=2,
            kernels="vector",
            backoff=BackoffPolicy(base=0.1, max_attempts=3),
            faults=["kill@0:at=2"],
            targets=[CMD_LOCALHOST],
        )
        assert result.ok
        assert result.outcomes[0].attempts == 2  # died once, recovered
        oracle_dir = str(tmp_path / "oracle")
        run_experiment(PARITY_SPEC, workers=1, cache=TrialCache(oracle_dir))
        assert cache_fingerprint(str(tmp_path / "cache")) == cache_fingerprint(
            oracle_dir
        )
        # no shm segments outlive the run, killed exporter included
        assert set(glob.glob("/dev/shm/repro-core-*")) == before


# -- shm sweep unit surface --------------------------------------------


class TestSweepLeakedCores:
    def test_sweeps_foreign_dead_exporters_segments(self):
        graph = cycle(64)
        handle = shm.export_graph(graph)
        # Simulate a crashed exporter: the segment exists on disk but no
        # live process claims it in _EXPORTED.
        _, seg = shm._EXPORTED.pop(handle.segment)
        seg.close()
        swept = shm.sweep_leaked_cores(os.getpid())
        assert handle.segment in swept
        assert not os.path.exists(f"/dev/shm/{handle.segment}")

    def test_skips_own_live_exports(self):
        graph = cycle(64)
        handle = shm.export_graph(graph)
        try:
            assert shm.sweep_leaked_cores(os.getpid()) == []
            assert os.path.exists(f"/dev/shm/{handle.segment}")
        finally:
            shm.release_core(handle)

    def test_foreign_pid_prefix_matches_nothing(self):
        graph = cycle(64)
        handle = shm.export_graph(graph)
        try:
            assert shm.sweep_leaked_cores(999999999) == []
        finally:
            shm.release_core(handle)


# -- the acceptance chaos run ------------------------------------------


class TestRemoteChaosAcceptance:
    def test_k8_chaos_over_cmd_targets_matches_oracle(self, tmp_path):
        """Kill a shard mid-run on a cmd:// target, then pull every
        shard's export through a link that stalls, truncates, and
        garbles — and still merge byte-identical to the K=1 oracle."""
        plan_path, _ = write_plan(tmp_path, num_shards=8)
        fabric = run_fabric(
            plan_path,
            str(tmp_path / "fabric-cache"),
            work_dir=str(tmp_path / "work"),
            max_parallel=4,
            backoff=BackoffPolicy(base=0.1, max_attempts=3),
            faults=["kill@1:at=1", "kill@3:at=1"],
            targets=[CMD_LOCALHOST + "#concurrency=4"],
        )
        assert fabric.ok, fabric.summary()

        # Host-side: export each shard's root with its manifest.
        export_root = str(tmp_path / "exports")
        for i in range(8):
            shard_dir = os.path.join(str(tmp_path / "work"), f"shard-{i}")
            TrialCache(shard_dir).export_dir(
                os.path.join(export_root, f"shard-{i}")
            )

        # Link-side chaos: stall one shard's transfer past the client
        # timeout, truncate another, garble a third — once each.
        injector = NetFaultInjector(
            parse_fault_specs(
                "net-stall@2:attempts=1,secs=5;"
                "net-truncate@4:attempts=1;"
                "net-garble@5:attempts=1"
            ),
            seed=11,
        )
        merged_dir = str(tmp_path / "merged")
        policy = PullPolicy(
            timeout=1.0, max_attempts=4, backoff_base=0.05, jitter=0.0
        )
        merged = TrialCache(merged_dir)
        with ExportServer(export_root, injector=injector) as server:
            for i in range(8):
                result = pull_export(
                    f"{server.url}/shard-{i}",
                    os.path.join(str(tmp_path / "pulls"), f"src-{i}"),
                    policy,
                )
                assert result.ok, result.summary()
                merged.merge(result.dest)

        oracle_dir = str(tmp_path / "oracle")
        run_experiment(PARITY_SPEC, workers=1, cache=TrialCache(oracle_dir))
        assert cache_fingerprint(merged_dir) == cache_fingerprint(oracle_dir)
