"""Tests for gadget construction (Figures 5 and 6) and Definition 2 shape."""

from __future__ import annotations

import pytest

from repro.gadgets import (
    CENTER,
    Down,
    GadgetScope,
    Index,
    LCHILD,
    LogGadgetFamily,
    NOPORT,
    PARENT,
    Port,
    RCHILD,
    RIGHT,
    UP,
    build_gadget,
    gadget_size,
    subgadget_size,
)
from repro.local import bfs_distances, diameter


class TestSizes:
    def test_subgadget_size_formula(self):
        assert subgadget_size(2) == 3
        assert subgadget_size(5) == 31

    def test_gadget_size_formula(self):
        assert gadget_size(3, 4) == 3 * 15 + 1
        assert gadget_size(2, (2, 5)) == 3 + 31 + 1

    @pytest.mark.parametrize("delta,height", [(1, 2), (2, 3), (3, 4), (4, 2), (3, 6)])
    def test_built_size_matches(self, delta, height):
        built = build_gadget(delta, height)
        assert built.num_nodes == gadget_size(delta, height)
        assert built.graph.num_nodes == len(built.coords)

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            build_gadget(0, 3)
        with pytest.raises(ValueError):
            build_gadget(2, 1)
        with pytest.raises(ValueError):
            build_gadget(2, (3,))


class TestStructure:
    def test_ports_are_bottom_right_corners(self):
        built = build_gadget(3, 4)
        for i, port_node in enumerate(built.ports, start=1):
            assert built.inputs.node(port_node).port == Port(i)
            assert built.coords[port_node] == ("sub", i, 3, 7)

    def test_center_labels(self):
        built = build_gadget(3, 3)
        node = built.inputs.node(built.center)
        assert node.role == CENTER
        assert node.port == NOPORT
        down_labels = {
            built.half_label(built.center, p)
            for p in range(built.graph.degree(built.center))
        }
        assert down_labels == {Down(1), Down(2), Down(3)}

    def test_roots_point_up(self):
        built = build_gadget(2, 3)
        scope = GadgetScope(built.graph, built.inputs)
        for i in (1, 2):
            root = next(
                v for v, c in built.coords.items() if c == ("sub", i, 0, 0)
            )
            assert scope.follow(root, UP) == built.center
            assert scope.follow(built.center, Down(i)) == root

    def test_tree_and_level_edges(self):
        built = build_gadget(1, 4)
        scope = GadgetScope(built.graph, built.inputs)
        node_of = {c: v for v, c in built.coords.items()}
        # parent pointers
        child = node_of[("sub", 1, 2, 3)]
        parent = node_of[("sub", 1, 1, 1)]
        assert scope.follow(child, PARENT) == parent
        assert scope.follow(parent, RCHILD) == child
        # level paths
        a = node_of[("sub", 1, 2, 1)]
        b = node_of[("sub", 1, 2, 2)]
        assert scope.follow(a, RIGHT) == b
        # commuting square of constraint 2c
        u = node_of[("sub", 1, 1, 0)]
        lchild = scope.follow(u, LCHILD)
        right = scope.follow(lchild, RIGHT)
        assert scope.follow(right, PARENT) == u

    def test_distance2_coloring_is_proper(self):
        built = build_gadget(3, 4)
        graph, inputs = built.graph, built.inputs
        for v in graph.nodes():
            neighborhood = set()
            for u in graph.neighbors(v):
                neighborhood.add(u)
                neighborhood.update(graph.neighbors(u))
            neighborhood.discard(v)
            mine = inputs.node(v).color
            assert all(inputs.node(u).color != mine for u in neighborhood)

    def test_half_edges_replicate_colors(self):
        built = build_gadget(2, 3)
        for v in built.graph.nodes():
            color = built.inputs.node(v).color
            for p in range(built.graph.degree(v)):
                assert built.inputs.half_at(v, p).color == color

    def test_mixed_heights(self):
        built = build_gadget(3, (2, 4, 3))
        assert built.num_nodes == 3 + 15 + 7 + 1
        assert built.inputs.node(built.ports[1]).port == Port(2)


class TestDefinition2Metrics:
    """The (n, D)-gadget and (d, Delta)-family properties."""

    @pytest.mark.parametrize("delta,height", [(2, 3), (3, 4), (3, 5)])
    def test_port_distances_are_2h(self, delta, height):
        built = build_gadget(delta, height)
        family = LogGadgetFamily(delta)
        for i in range(delta):
            dist = bfs_distances(built.graph, built.ports[i])
            for j in range(delta):
                if i != j:
                    assert dist[built.ports[j]] == family.port_distance(height)

    def test_diameter_logarithmic(self):
        family = LogGadgetFamily(3)
        for n in (30, 100, 400, 1500):
            built = family.member(n)
            assert diameter(built.graph) <= family.depth_bound(built.num_nodes)

    def test_member_size_theta_n(self):
        family = LogGadgetFamily(3)
        for n in (25, 60, 200, 900, 5000):
            built = family.member(n)
            assert n / 4 <= built.num_nodes <= 2 * n + 4

    def test_min_size(self):
        family = LogGadgetFamily(2)
        assert family.min_size() == gadget_size(2, 2)
        member = family.member(1)
        assert member.num_nodes == family.min_size()
