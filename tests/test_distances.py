"""Tests for distance/component/cycle computations, cross-checked with networkx."""

from __future__ import annotations

import networkx as nx
import pytest
from hypothesis import given, settings

from repro.generators import complete, complete_binary_tree, cycle, disjoint_union, path, torus_grid
from repro.local import (
    PortGraph,
    bfs_distances,
    connected_components,
    cycle_containment_radius,
    diameter,
    eccentricity,
    girth,
    induced_subgraph,
    multi_source_bfs,
)
from repro.local.nxinterop import to_networkx
from tests.conftest import build_multigraph, multigraphs, simple_graphs


class TestBfs:
    def test_distances_on_path(self):
        graph = path(5)
        dist = bfs_distances(graph, 0)
        assert dist == {0: 0, 1: 1, 2: 2, 3: 3, 4: 4}

    def test_max_radius_truncates(self):
        graph = path(10)
        dist = bfs_distances(graph, 0, max_radius=3)
        assert set(dist) == {0, 1, 2, 3}

    def test_multi_source_parents_descend(self):
        graph = path(7)
        dist, parent = multi_source_bfs(graph, [0, 6])
        assert dist[3] == 3
        for v in graph.nodes():
            if dist[v] > 0:
                edge = graph.edge(parent[v])
                other = edge.a.node if edge.b.node == v else edge.b.node
                assert dist[other] == dist[v] - 1

    @given(multigraphs())
    @settings(max_examples=40, deadline=None)
    def test_bfs_matches_networkx(self, graph: PortGraph):
        if graph.num_nodes == 0:
            return
        ours = bfs_distances(graph, 0)
        theirs = nx.single_source_shortest_path_length(to_networkx(graph), 0)
        assert ours == dict(theirs)


class TestComponents:
    def test_disconnected_components(self):
        graph = disjoint_union(cycle(3), path(2))
        comps = connected_components(graph)
        assert comps == [[0, 1, 2], [3, 4]]

    def test_isolated_nodes_are_components(self):
        graph = PortGraph(3, [])
        assert connected_components(graph) == [[0], [1], [2]]


class TestMetrics:
    def test_eccentricity_and_diameter(self):
        graph = path(5)
        assert eccentricity(graph, 2) == 2
        assert eccentricity(graph, 0) == 4
        assert diameter(graph) == 4

    def test_diameter_of_torus(self):
        graph = torus_grid(4, 4)
        assert diameter(graph) == 4

    @given(simple_graphs(max_nodes=9))
    @settings(max_examples=30, deadline=None)
    def test_diameter_matches_networkx(self, graph: PortGraph):
        nxg = to_networkx(graph)
        expected = 0
        for comp in nx.connected_components(nxg):
            sub = nxg.subgraph(comp)
            expected = max(expected, nx.diameter(sub))
        assert diameter(graph) == expected


class TestGirth:
    def test_girth_of_cycles(self):
        for n in (3, 4, 5, 8, 13):
            assert girth(cycle(n)) == n

    def test_girth_none_on_trees(self):
        assert girth(path(6)) is None
        assert girth(complete_binary_tree(4)) is None

    def test_self_loop_girth_one(self):
        graph = build_multigraph(2, [(0, 0), (0, 1)])
        assert girth(graph) == 1

    def test_parallel_edges_girth_two(self):
        graph = build_multigraph(2, [(0, 1), (0, 1)])
        assert girth(graph) == 2

    def test_complete_graph_girth_three(self):
        assert girth(complete(5)) == 3

    @given(simple_graphs(max_nodes=9))
    @settings(max_examples=40, deadline=None)
    def test_girth_matches_networkx(self, graph: PortGraph):
        nxg = to_networkx(graph)
        try:
            expected = nx.girth(nx.Graph(nxg))
        except Exception:  # pragma: no cover - very old networkx
            pytest.skip("networkx girth unavailable")
        ours = girth(graph)
        if expected == float("inf"):
            assert ours is None
        else:
            assert ours == expected


class TestCycleContainment:
    def test_on_cycle_every_node_sees_it_at_half(self):
        graph = cycle(8)
        for v in graph.nodes():
            assert cycle_containment_radius(graph, v) == 4

    def test_odd_cycle(self):
        graph = cycle(7)
        for v in graph.nodes():
            assert cycle_containment_radius(graph, v) == 3

    def test_tree_has_no_cycle(self):
        graph = complete_binary_tree(3)
        for v in graph.nodes():
            assert cycle_containment_radius(graph, v) is None

    def test_self_loop_at_distance(self):
        # path 0-1-2 plus a self-loop at node 2
        graph = build_multigraph(3, [(0, 1), (1, 2), (2, 2)])
        assert cycle_containment_radius(graph, 0) == 2
        assert cycle_containment_radius(graph, 2) == 0

    def test_max_radius_cutoff(self):
        graph = cycle(16)
        assert cycle_containment_radius(graph, 0, max_radius=3) is None
        assert cycle_containment_radius(graph, 0, max_radius=8) == 8

    def test_ball_of_returned_radius_contains_cycle(self):
        # triangle with a tail: tail nodes see the triangle at their distance+1
        graph = build_multigraph(6, [(0, 1), (1, 2), (2, 0), (2, 3), (3, 4), (4, 5)])
        assert cycle_containment_radius(graph, 5) == 4
        assert cycle_containment_radius(graph, 0) == 1


class TestInducedSubgraph:
    def test_preserves_port_order(self):
        graph = PortGraph.from_edge_list(4, [(0, 1), (0, 2), (0, 3)])
        sub, mapping = induced_subgraph(graph, [0, 1, 3])
        v0 = mapping[0]
        assert sub.degree(v0) == 2
        assert sub.neighbor(v0, 0) == mapping[1]
        assert sub.neighbor(v0, 1) == mapping[3]

    def test_keeps_loops_and_parallels(self):
        graph = build_multigraph(3, [(0, 0), (0, 1), (0, 1), (1, 2)])
        sub, mapping = induced_subgraph(graph, [0, 1])
        assert sub.num_edges == 3
        assert sub.has_self_loop()
        assert sub.has_parallel_edges()

    @given(multigraphs())
    @settings(max_examples=40, deadline=None)
    def test_full_induction_is_identity_shaped(self, graph: PortGraph):
        sub, mapping = induced_subgraph(graph, graph.nodes())
        assert sub.num_nodes == graph.num_nodes
        assert sub.num_edges == graph.num_edges
        for v in graph.nodes():
            assert sub.degree(mapping[v]) == graph.degree(v)
