"""The batched trial pipeline's load-bearing property: equivalence.

``Runtime.run_many`` and chunked ``run_experiment`` may amortize
whatever setup they like — entrypoint resolution, frozen topology,
verifier skeletons — but the records they produce must be bit-identical
to the per-trial serial path at every worker count and batch size.
The suite pins that, plus the cache-discipline corners: seeded-topology
families must never share a graph across seeds, and a warm cache must
replay the batched run exactly.
"""

from __future__ import annotations

import pytest

from repro.analysis.sweep import Sweep, SweepPoint
from repro.engine.cache import TrialCache
from repro.engine.cli import main as engine_main
from repro.engine.runner import (
    auto_batch_size,
    execute_trial,
    execute_trial_batch,
    run_experiment,
)
from repro.engine.spec import ExperimentSpec
from repro.runtime import InstanceCache, Runtime, TrialBatch, registry
from repro.runtime.entrypoints import (
    family_ref,
    parse_entrypoint,
    solver_ref,
    verifier_ref,
)


def record_key(record):
    """Every TrialRecord field that must be bit-identical (not wall time)."""
    return (
        record.problem,
        record.solver,
        record.family,
        record.n,
        record.actual_n,
        record.seed,
        record.rounds,
        tuple(record.node_radius),
        record.verified,
        tuple(sorted(record.extras.items())),
    )


def registry_spec(name, solver, problem, family, ns, seeds):
    return ExperimentSpec(
        name=name,
        solver=solver_ref(solver),
        generator=family_ref(family),
        verifier=verifier_ref(problem),
        ns=ns,
        seeds=seeds,
    )


PARITY_SPEC = registry_spec(
    "test/degree-parity/parity@cycle",
    "parity",
    "degree-parity",
    "cycle",
    ns=(8, 12, 16),
    seeds=(0, 1, 2),
)


class TestRunManyEquivalence:
    GRIDS = [
        # (problem, solver, family, ns, seeds) — a reuse family per
        # adapter path, a randomized solver, the shared-inputs gadget
        # core, and a seeded-topology family where reuse must NOT kick in.
        ("degree-parity", "parity", "cycle", (8, 12), (0, 1, 2)),
        ("degree-parity", "parity-sync", "torus", (9, 16), (0, 1)),
        ("degree-parity", "parity-views", "tree", (7, 15), (0, 1)),
        ("sinkless-orientation", "sinkless-rand", "cubic", (16,), (0, 1, 2)),
        ("gadget-proof", "gadget-prover", "gadget", (3, 4), (0, 1)),
    ]

    @pytest.mark.parametrize("problem,solver,family,ns,seeds", GRIDS)
    def test_matches_per_trial_run(self, problem, solver, family, ns, seeds):
        runtime = Runtime()
        serial = [
            runtime.run(problem, solver, family, n, seed)
            for n in ns
            for seed in seeds
        ]
        batched = runtime.run_many(problem, solver, family, ns, seeds)
        assert [record_key(r) for r in serial] == [
            record_key(r) for r in batched
        ]
        for a, b in zip(serial, batched):
            assert a.outputs == b.outputs

    def test_unsound_combination_rejected_like_run(self):
        runtime = Runtime()
        with pytest.raises(ValueError, match="not declared sound"):
            runtime.run_many("sinkless-orientation", "sinkless-det", "cycle", (8,))

    def test_verify_false_skips_verification(self):
        records = Runtime().run_many(
            "degree-parity", "parity", "cycle", (8,), (0,), verify=False
        )
        assert [r.verified for r in records] == [None]


class TestInstanceCache:
    def test_reuse_family_shares_one_graph_across_seeds(self):
        cache = InstanceCache()
        a, key_a = cache.build(registry.family("cycle"), 8, 0)
        b, key_b = cache.build(registry.family("cycle"), 8, 1)
        assert key_a == key_b == ("cycle", 8)
        assert a.graph is b.graph
        assert a.ids != b.ids  # the per-seed dressing still differs
        assert (cache.built, cache.reused) == (1, 1)

    def test_seeded_family_never_shares(self):
        cache = InstanceCache()
        a, key_a = cache.build(registry.family("cubic"), 16, 0)
        b, key_b = cache.build(registry.family("cubic"), 16, 1)
        assert key_a is None and key_b is None
        assert a.graph is not b.graph
        assert cache.bypassed == 2 and cache.built == 0 and cache.reused == 0

    def test_params_bypass_reuse(self):
        # Extra builder params parameterize the topology too, so a
        # parameterized build must run the full builder every time.
        cache = InstanceCache()
        info = registry.family("cubic")
        _, key = cache.build(info, 16, 0, params=None)
        assert key is None
        assert cache.bypassed == 1

    def test_batch_counts_reuse_on_topology_family(self):
        batch = TrialBatch("degree-parity", "parity", "cycle")
        for seed in range(4):
            batch.run_one(8, seed)
        assert batch.instances.built == 1
        assert batch.instances.reused == 3

    def test_batch_prepared_verifiers_stay_bounded(self):
        batch = TrialBatch("degree-parity", "parity", "cycle")
        for n in range(4, 24):  # more sizes than the core capacity
            batch.run_one(n, 0)
        assert len(batch._prepared) <= batch.instances.capacity

    def test_batch_never_reuses_on_seeded_family(self):
        batch = TrialBatch("sinkless-orientation", "sinkless-det", "cubic")
        for seed in range(3):
            batch.run_one(16, seed)
        assert batch.instances.built == 0
        assert batch.instances.reused == 0
        assert batch.instances.bypassed == 3

    def test_registry_rejects_hooks_on_seeded_family(self):
        from repro.runtime.registry import register_family

        with pytest.raises(ValueError, match="topology_seeded=True"):
            register_family(
                "bad-family", topology_seeded=True, topology=lambda n: None,
                dress=lambda core, n, seed: None,
            )
        with pytest.raises(ValueError, match="both topology and dress"):
            register_family(
                "bad-family", topology_seeded=False, topology=lambda n: None,
            )


class TestChunkedEngineEquivalence:
    def test_records_identical_across_workers_and_batch_sizes(self):
        oracle = [execute_trial(trial) for trial in PARITY_SPEC.trials()]
        for workers, batch_size in [
            (1, 1), (1, 2), (1, 64), (2, 1), (2, 3), (2, None), (4, 2),
        ]:
            report = run_experiment(
                PARITY_SPEC, workers=workers, batch_size=batch_size
            )
            assert report.records == oracle, (workers, batch_size)
            assert report.computed == len(oracle)

    def test_seeded_topology_spec_identical(self):
        spec = registry_spec(
            "test/sinkless/sinkless-rand@cubic",
            "sinkless-rand",
            "sinkless-orientation",
            "cubic",
            ns=(16, 32),
            seeds=(0, 1, 2),
        )
        oracle = [execute_trial(trial) for trial in spec.trials()]
        report = run_experiment(spec, workers=2, batch_size=3)
        assert report.records == oracle

    def test_legacy_refs_take_the_bypass_path(self):
        spec = ExperimentSpec(
            name="test/legacy-refs",
            solver="repro.problems:DeterministicSinklessSolver",
            generator="repro.generators.hard:cubic_instance",
            verifier="repro.engine.experiments:verify_sinkless",
            ns=(16, 32),
            seeds=(0, 1),
        )
        oracle = [execute_trial(trial) for trial in spec.trials()]
        report = run_experiment(spec, workers=2, batch_size=2)
        assert report.records == oracle

    def test_chunks_never_span_two_sizes(self):
        report = run_experiment(PARITY_SPEC, workers=1, batch_size=64)
        # 3 sizes x 3 seeds with a huge cap: one chunk per size.
        assert report.batches == 3
        assert report.batch_size == 64

    def test_batch_verifier_failure_still_raises(self):
        spec = ExperimentSpec(
            name="test/batched-bad-verify",
            solver=solver_ref("parity"),
            generator=family_ref("cycle"),
            verifier="tests.test_batched_engine:_always_fail",
            ns=(8,),
            seeds=(0, 1),
        )
        with pytest.raises(AssertionError, match="nope"):
            run_experiment(spec, workers=1, batch_size=2)

    def test_mixed_ref_batches_rejected(self):
        trials = PARITY_SPEC.trials()[:1] + registry_spec(
            "test/other", "constant", "constant", "cycle", (8,), (0,)
        ).trials()
        with pytest.raises(ValueError, match="must share"):
            execute_trial_batch(trials)

    def test_invalid_batch_size_rejected(self):
        with pytest.raises(ValueError, match="batch size"):
            run_experiment(PARITY_SPEC, workers=1, batch_size=0)

    def test_invalid_batch_size_rejected_even_on_warm_cache(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        run_experiment(PARITY_SPEC, workers=1, cache=TrialCache(cache_dir))
        with pytest.raises(ValueError, match="batch size"):
            run_experiment(
                PARITY_SPEC, cache=TrialCache(cache_dir), batch_size=-1
            )


class TestCacheWarmReplay:
    def test_cold_batched_then_warm(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        cold = run_experiment(
            PARITY_SPEC, workers=2, cache=TrialCache(cache_dir), batch_size=2
        )
        assert cold.computed == cold.trials_total == 9
        assert cold.batches == 6  # ceil(3/2) chunks per size, 3 sizes
        warm = run_experiment(
            PARITY_SPEC, workers=2, cache=TrialCache(cache_dir), batch_size=2
        )
        assert warm.cache_hits == warm.trials_total == 9
        assert warm.computed == 0 and warm.batches == 0
        assert warm.records == cold.records
        assert warm.sweep == cold.sweep

    def test_batched_records_replay_a_per_trial_cache(self, tmp_path):
        # A cache written by batch_size=1 must satisfy a batched rerun
        # (same keys, same records) and vice versa.
        cache_dir = str(tmp_path / "cache")
        run_experiment(
            PARITY_SPEC, workers=1, cache=TrialCache(cache_dir), batch_size=1
        )
        warm = run_experiment(
            PARITY_SPEC, workers=2, cache=TrialCache(cache_dir), batch_size=None
        )
        assert warm.cache_hits == warm.trials_total

    def test_warm_replay_does_not_materialize_a_solver(self, tmp_path, monkeypatch):
        spec = registry_spec(
            "test/constant@cycle-lazy-name",
            "constant",
            "constant",
            "cycle",
            ns=(8,),
            seeds=(0,),
        )
        cache_dir = str(tmp_path / "cache")
        cold = run_experiment(spec, workers=1, cache=TrialCache(cache_dir))
        from repro.problems.trivial import ConstantSolver

        def boom(self, *args, **kwargs):
            raise AssertionError("warm replay constructed a solver")

        monkeypatch.setattr(ConstantSolver, "__init__", boom)
        warm = run_experiment(spec, workers=1, cache=TrialCache(cache_dir))
        assert warm.cache_hits == warm.trials_total
        assert warm.sweep.solver_name == cold.sweep.solver_name == "constant"


class TestStreaming:
    def test_on_record_sees_every_record_in_order_when_serial(self):
        seen = []
        report = run_experiment(
            PARITY_SPEC, workers=1, batch_size=2, on_record=seen.append
        )
        assert seen == report.records

    def test_on_record_fires_for_cache_hits_and_computed(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        narrower = registry_spec(
            "test/degree-parity/parity@cycle",
            "parity",
            "degree-parity",
            "cycle",
            ns=(8, 12),
            seeds=(0, 1, 2),
        )
        run_experiment(narrower, workers=1, cache=TrialCache(cache_dir))
        seen = []
        report = run_experiment(
            PARITY_SPEC,
            workers=2,
            cache=TrialCache(cache_dir),
            on_record=seen.append,
        )
        assert len(seen) == report.trials_total == 9
        assert report.cache_hits == 6
        # Cached records stream first in grid order (the n=8 and n=12
        # trials), then the computed n=16 chunk; together they cover
        # exactly the report's record list.
        assert seen[:6] == report.records[:6]
        by_grid = sorted(seen, key=lambda r: (r["n"], r["seed"]))
        assert by_grid == sorted(
            report.records, key=lambda r: (r["n"], r["seed"])
        )


class TestAutoBatchSize:
    def test_covers_a_seed_group(self):
        assert auto_batch_size(num_missing=12, workers=8, seeds_per_n=6) == 6

    def test_load_balances_large_runs(self):
        # 1000 missing on 4 workers -> ceil(1000/16) = 63 per chunk.
        assert auto_batch_size(1000, 4, 2) == 63

    def test_caps_and_floors(self):
        assert auto_batch_size(10_000, 1, 1) == 64
        assert auto_batch_size(0, 4, 3) == 1
        assert auto_batch_size(1, 1, 1) == 1


class TestBestPerCellLandscape:
    def _report(self, name, points):
        spec = ExperimentSpec(
            name=name, solver="m:s", generator="m:g", ns=(64,), seeds=(0,)
        )
        sweep = Sweep(solver_name=name, points=points)
        return type("FakeReport", (), {"spec": spec, "sweep": sweep})()

    @staticmethod
    def _points(rounds):
        return [
            SweepPoint(
                n=64 * 2**i,
                trials=1,
                rounds_mean=float(r),
                rounds_max=r,
                rounds_min=r,
            )
            for i, r in enumerate(rounds)
        ]

    def test_min_growth_wins_regardless_of_name_order(self):
        from repro.analysis.landscape import rows_from_engine_reports

        # "parity" sorts before "parity-sync", but its fake sweep grows
        # linearly while parity-sync stays constant: the best-per-cell
        # policy must pick the constant one for the det column.
        growing = self._report(
            "landscape/degree-parity/parity@cycle",
            self._points([64, 128, 256, 512]),
        )
        flat = self._report(
            "landscape/degree-parity/parity-sync@cycle",
            self._points([3, 3, 3, 3]),
        )
        rows = rows_from_engine_reports([growing, flat])
        assert len(rows) == 1
        assert rows[0].det_sweep is flat.sweep
        assert rows[0].measured_det() == "1"

    def test_short_sweeps_lose_to_fitted_ones(self):
        from repro.analysis.landscape import rows_from_engine_reports

        short = self._report(
            "landscape/degree-parity/parity@cycle", self._points([1, 1])
        )
        fitted = self._report(
            "landscape/degree-parity/parity-sync@cycle",
            self._points([5, 6, 7, 8]),
        )
        rows = rows_from_engine_reports([short, fitted])
        assert rows[0].det_sweep is fitted.sweep


class TestCli:
    def test_batch_size_and_progress_flags(self, tmp_path, capsys):
        code = engine_main(
            [
                "run",
                "--experiment",
                "sinkless",
                "--workers",
                "1",
                "--max-n",
                "64",
                "--batch-size",
                "2",
                "--progress",
                "--cache-dir",
                str(tmp_path / "cache"),
            ]
        )
        assert code == 0
        captured = capsys.readouterr()
        assert "chunk(s)" in captured.out
        assert "trials" in captured.err  # the progress line went to stderr

    def test_rejects_nonpositive_batch_size(self, tmp_path, capsys):
        code = engine_main(
            [
                "run",
                "--experiment",
                "sinkless",
                "--max-n",
                "64",
                "--batch-size",
                "0",
                "--no-cache",
            ]
        )
        assert code == 2
        assert "--batch-size" in capsys.readouterr().err


def _always_fail(instance, result):
    raise AssertionError("nope")


class TestEntrypointParsing:
    def test_roundtrip(self):
        assert parse_entrypoint(solver_ref("parity")) == ("solver", "parity")
        assert parse_entrypoint(family_ref("cycle")) == ("family", "cycle")
        assert parse_entrypoint(verifier_ref("constant")) == (
            "verifier",
            "constant",
        )

    def test_foreign_refs_are_none(self):
        assert parse_entrypoint("repro.generators.hard:cubic_instance") is None
        assert parse_entrypoint("repro.runtime.entrypoints:nonsense") is None

    def test_display_names(self):
        assert registry.solver_display_name("constant") == "constant"
        # Lambda factory: materialized once, then memoized.
        assert registry.solver_display_name("parity") == "constant"
        assert registry.solver_display_name("gadget-prover") == "gadget-prover-V"
