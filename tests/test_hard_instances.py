"""Tests for Lemma 5 hard instances, the reduction, and the Pi_i family."""

from __future__ import annotations

import random

import pytest

from repro.core import (
    PaddedProblem,
    PaddedSolver,
    build_family,
    hard_instance,
    paper_f,
    simulate_padded_algorithm,
)
from repro.core.theory import (
    deterministic_prediction,
    gap_ratio_prediction,
    randomized_prediction,
    theorem1_lower,
    theorem1_upper,
)
from repro.gadgets import LogGadgetFamily
from repro.generators import complete, random_regular
from repro.lcl import verify
from repro.local import Instance
from repro.local.identifiers import sequential_ids
from repro.problems import DeterministicSinklessSolver, SinklessOrientation
from repro.util.rng import NodeRng


class TestPaperF:
    def test_floor_sqrt(self):
        assert paper_f(0) == 0
        assert paper_f(15) == 3
        assert paper_f(16) == 4
        assert paper_f(10**6) == 1000

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            paper_f(-1)


class TestHardInstance:
    def test_exact_target_size(self):
        base = complete(4)
        family = LogGadgetFamily(3)
        instance = hard_instance(base, family, 500)
        assert instance.num_nodes == 500
        assert instance.padded.graph.num_nodes <= 500

    def test_equal_gadgets_of_log_depth(self):
        base = complete(4)
        family = LogGadgetFamily(3)
        instance = hard_instance(base, family, 2000)
        budget = 2000 // 4
        assert instance.gadget_height == family.height_for(budget)
        sizes = {g.num_nodes for g in instance.padded.gadget_of}
        assert len(sizes) == 1

    def test_too_small_target_rejected(self):
        base = complete(4)
        family = LogGadgetFamily(3)
        with pytest.raises(ValueError):
            hard_instance(base, family, 20)

    def test_degree_guard(self):
        base = complete(6)  # degree 5 > delta 3
        with pytest.raises(ValueError):
            hard_instance(base, LogGadgetFamily(3), 10_000)

    def test_isolated_filler_is_unconstrained(self):
        """Filler nodes form invalid singleton gadgets; the Pi' solver
        must still succeed and the verifier accept (don't-care nodes)."""
        base = complete(4)
        family = LogGadgetFamily(3)
        instance = hard_instance(base, family, 400)
        problem = PaddedProblem(SinklessOrientation().problem(), family)
        solver = PaddedSolver(problem, DeterministicSinklessSolver())
        run = solver.solve(
            Instance(
                instance.graph,
                sequential_ids(instance.num_nodes),
                instance.inputs,
                400,
            )
        )
        verdict = problem.verify(instance.graph, instance.inputs, run.outputs)
        assert verdict.ok, verdict.summary()


class TestSimulationReduction:
    def test_reduction_yields_valid_base_solution(self):
        """Lemma 5, executably: a Pi' solver induces a Pi solver."""
        rng = random.Random(7)
        base_graph = random_regular(12, 3, rng)
        family = LogGadgetFamily(3)
        problem = PaddedProblem(SinklessOrientation().problem(), family)
        padded_solver = PaddedSolver(problem, DeterministicSinklessSolver())
        base_instance = Instance.simple(base_graph, seed=0)
        base_result, padded_result = simulate_padded_algorithm(
            problem, padded_solver, family, base_instance, target_n=12 * 12 * 4
        )
        base_problem = SinklessOrientation().problem()
        from repro.lcl import Labeling

        verdict = verify(
            base_problem, base_graph, Labeling(base_graph), base_result.outputs
        )
        assert verdict.ok, verdict.summary()

    def test_reduction_round_scaling(self):
        """The induced base algorithm costs padded rounds / depth."""
        rng = random.Random(9)
        base_graph = random_regular(16, 3, rng)
        family = LogGadgetFamily(3)
        problem = PaddedProblem(SinklessOrientation().problem(), family)
        padded_solver = PaddedSolver(problem, DeterministicSinklessSolver())
        base_instance = Instance.simple(base_graph, seed=0)
        base_result, padded_result = simulate_padded_algorithm(
            problem, padded_solver, family, base_instance, target_n=3000
        )
        depth = base_result.extras["depth"]
        assert depth >= 4
        assert base_result.rounds <= padded_result.rounds
        assert base_result.rounds >= padded_result.rounds // (4 * depth)


class TestTheory:
    def test_predictions_monotone_in_level(self):
        for n in (10**3, 10**6):
            det = [deterministic_prediction(i, n) for i in (1, 2, 3)]
            rand = [randomized_prediction(i, n) for i in (1, 2, 3)]
            assert det[0] < det[1] < det[2]
            assert rand[0] < rand[1] < rand[2]

    def test_rand_below_det_at_same_level(self):
        for i in (1, 2, 3):
            assert randomized_prediction(i, 10**6) < deterministic_prediction(i, 10**6)

    def test_gap_ratio_matches_quotient(self):
        for i in (1, 2, 3):
            n = 10**6
            quotient = deterministic_prediction(i, n) / randomized_prediction(i, n)
            assert quotient == pytest.approx(gap_ratio_prediction(n))

    def test_theorem1_bounds_bracket(self):
        assert theorem1_lower(5, 10**6) <= theorem1_upper(5, 10**6)

    def test_invalid_level(self):
        with pytest.raises(ValueError):
            deterministic_prediction(0, 100)
        with pytest.raises(ValueError):
            randomized_prediction(0, 100)


class TestFamilyConstruction:
    def test_levels_and_names(self):
        levels = build_family(3)
        assert [lvl.name for lvl in levels] == ["Pi_1", "Pi_2", "Pi_3"]
        assert levels[0].family is None
        assert levels[1].family.delta == 3
        assert levels[2].family.delta == 5

    def test_solver_wrapping(self):
        levels = build_family(3)
        assert levels[1].det_solver.randomized is False
        assert levels[1].rand_solver.randomized is True
        assert levels[2].det_solver.name.startswith("padded[padded[")

    def test_level_one_verifies_sinkless(self):
        from repro.generators.hard import cubic_instance
        from repro.lcl import Labeling

        level = build_family(1)[0]
        instance = cubic_instance(32, 0)
        result = level.det_solver.solve(instance)
        verdict = level.verify(
            instance.graph, Labeling(instance.graph), result.outputs
        )
        assert verdict.ok

    def test_needs_positive_levels(self):
        with pytest.raises(ValueError):
            build_family(0)

    def test_padded_hard_instance_factory(self):
        from repro.generators.hard import padded_hard_instance

        levels = build_family(2)
        instance = padded_hard_instance(levels[1], 900, 0)
        assert instance.graph.num_nodes == 900
        result = levels[1].det_solver.solve(instance)
        verdict = levels[1].verify(instance.graph, instance.inputs, result.outputs)
        assert verdict.ok, verdict.summary()
