"""Shard determinism and cache merge algebra.

The shard layer's load-bearing invariant: running a plan's K shards in
ANY order, on any mix of processes, with any per-shard cache roots,
then merging, yields records — and a Figure 1 table — byte-identical
to the single-host run.  The suite pins that (K in {1, 2, 5} against
the per-trial oracle, plus the K=4 shuffled landscape acceptance run),
and the cache algebra that makes distributed merge safe: union is
idempotent and commutative, compaction preserves the index, and a torn
trailing line never poisons an import.
"""

from __future__ import annotations

import json
import os
import random

import pytest

from repro.engine.cache import TrialCache
from repro.engine.cli import main as engine_main
from repro.engine.experiments import build_experiment
from repro.engine.runner import (
    execute_trial,
    iter_records,
    merge_shard_reports,
    plan_experiment,
    run_experiment,
    run_shard,
)
from repro.engine.shard import (
    ShardManifest,
    ShardPlan,
    dump_plan_file,
    load_plan_file,
)
from repro.engine.spec import ExperimentSpec
from repro.runtime.entrypoints import family_ref, solver_ref, verifier_ref


def registry_spec(name, solver, problem, family, ns, seeds):
    return ExperimentSpec(
        name=name,
        solver=solver_ref(solver),
        generator=family_ref(family),
        verifier=verifier_ref(problem),
        ns=ns,
        seeds=seeds,
    )


PARITY_SPEC = registry_spec(
    "test/degree-parity/parity@cycle",
    "parity",
    "degree-parity",
    "cycle",
    ns=(8, 12, 16),
    seeds=(0, 1, 2),
)


class TestPlanning:
    def test_plan_is_stable_under_replanning(self):
        a = plan_experiment(PARITY_SPEC, num_shards=3, batch_size=2)
        b = plan_experiment(PARITY_SPEC, num_shards=3, batch_size=2)
        assert a == b
        assert a.key() == b.key()

    def test_plan_chunks_cover_the_grid_and_respect_sizes(self):
        plan = plan_experiment(PARITY_SPEC, num_shards=2, batch_size=2)
        trials = PARITY_SPEC.trials()
        covered = sorted(i for chunk in plan.chunks for i in chunk)
        assert covered == list(range(len(trials)))
        for chunk in plan.chunks:
            assert len(chunk) <= 2
            assert len({trials[i].n for i in chunk}) == 1  # never spans sizes

    def test_shards_partition_the_chunks_round_robin(self):
        plan = plan_experiment(PARITY_SPEC, num_shards=2, batch_size=2)
        dealt = [plan.shard_chunks(i) for i in range(2)]
        assert dealt[0] == plan.chunks[0::2]
        assert dealt[1] == plan.chunks[1::2]
        merged = sorted(i for side in dealt for chunk in side for i in chunk)
        assert merged == list(range(plan.trial_count()))

    def test_chunking_ignores_the_cache_state(self, tmp_path):
        # Planning must chunk the FULL grid: a host with a warm cache
        # and a cold remote host have to agree on shard boundaries.
        cache = TrialCache(str(tmp_path / "warm"))
        run_experiment(PARITY_SPEC, cache=cache)
        warm = plan_experiment(PARITY_SPEC, num_shards=2, batch_size=2)
        cold = plan_experiment(PARITY_SPEC, num_shards=2, batch_size=2)
        assert warm.key() == cold.key()

    def test_invalid_arguments_rejected(self):
        with pytest.raises(ValueError, match="batch size"):
            plan_experiment(PARITY_SPEC, batch_size=0)
        with pytest.raises(ValueError, match=">= 1 shard"):
            plan_experiment(PARITY_SPEC, num_shards=0)
        plan = plan_experiment(PARITY_SPEC, num_shards=2)
        with pytest.raises(ValueError, match="out of range"):
            plan.manifest(2)

    def test_manifest_json_round_trip(self):
        plan = plan_experiment(PARITY_SPEC, num_shards=3, batch_size=2)
        manifest = plan.manifest(1)
        clone = ShardManifest.from_json(manifest.to_json())
        assert clone == manifest
        assert clone.spec == PARITY_SPEC
        assert clone.trial_indices() == manifest.trial_indices()

    def test_plan_file_round_trip(self):
        plans = [plan_experiment(PARITY_SPEC, num_shards=2, batch_size=2)]
        payload = json.loads(json.dumps(dump_plan_file("test", plans)))
        experiment, loaded = load_plan_file(payload)
        assert experiment == "test"
        assert loaded == plans

    def test_plan_file_rejects_tampering(self):
        plans = [plan_experiment(PARITY_SPEC, num_shards=2, batch_size=2)]
        payload = dump_plan_file("test", plans)
        payload["specs"][0]["chunks"][0] = [1, 0]  # reorder one chunk
        with pytest.raises(ValueError, match="content hash"):
            load_plan_file(payload)

    def test_truncated_plan_refused_even_without_plan_key(self):
        plans = [plan_experiment(PARITY_SPEC, num_shards=2, batch_size=2)]
        payload = dump_plan_file("test", plans)
        payload["specs"][0]["chunks"] = payload["specs"][0]["chunks"][:-1]
        payload["specs"][0].pop("plan_key")
        with pytest.raises(ValueError, match="full 9-trial grid"):
            load_plan_file(payload)

    def test_foreign_version_refused(self):
        plans = [plan_experiment(PARITY_SPEC, num_shards=1)]
        payload = dump_plan_file("test", plans)
        payload["version"] = 99
        with pytest.raises(ValueError, match="version"):
            load_plan_file(payload)


class TestShardedEquivalence:
    @pytest.mark.parametrize("num_shards", [1, 2, 5])
    def test_merged_shards_match_the_per_trial_oracle(
        self, num_shards, tmp_path
    ):
        oracle = [execute_trial(t) for t in PARITY_SPEC.trials()]
        plan = plan_experiment(
            PARITY_SPEC, num_shards=num_shards, batch_size=2
        )
        manifests = plan.manifests()
        random.Random(num_shards).shuffle(manifests)  # any execution order
        reports = []
        for manifest in manifests:
            cache = TrialCache(
                str(tmp_path / "shared"),
                isolation=str(tmp_path / f"shard-{manifest.shard_index}"),
            )
            reports.append(run_shard(manifest, workers=2, cache=cache))
        merged = merge_shard_reports(reports)
        assert merged.records == oracle
        assert merged.trials_total == len(oracle)
        assert merged.computed == len(oracle)
        single = run_experiment(PARITY_SPEC)
        assert merged.sweep == single.sweep

    def test_remote_host_needs_only_the_manifest(self, tmp_path):
        # Simulate shipping: serialize each manifest to JSON, "receive"
        # it, run from the deserialized copy alone.
        oracle = [execute_trial(t) for t in PARITY_SPEC.trials()]
        plan = plan_experiment(PARITY_SPEC, num_shards=2, batch_size=2)
        reports = []
        for manifest in plan.manifests():
            wire = manifest.to_json()
            reports.append(run_shard(ShardManifest.from_json(wire)))
        assert merge_shard_reports(reports).records == oracle

    def test_shard_replays_its_cache_slice(self, tmp_path):
        plan = plan_experiment(PARITY_SPEC, num_shards=2, batch_size=2)
        cache = TrialCache(str(tmp_path / "cache"))
        cold = run_shard(plan.manifest(0), cache=cache)
        assert cold.computed == cold.trials_total > 0
        warm = run_shard(plan.manifest(0), cache=cache)
        assert warm.cache_hits == warm.trials_total
        assert warm.computed == 0 and warm.batches == 0
        assert warm.records == cold.records

    def test_scattered_misses_repack_into_full_chunks(self, tmp_path):
        # After a partial merge the misses can interleave with hits
        # inside one size; the dispatch must pack the missing subset
        # like the pre-shard runner, not ship one chunk per remnant.
        spec = registry_spec(
            "test/degree-parity/parity@cycle-scattered",
            "parity",
            "degree-parity",
            "cycle",
            ns=(8,),
            seeds=tuple(range(8)),
        )
        full = TrialCache(str(tmp_path / "full"))
        oracle = run_experiment(spec, cache=full, batch_size=2)
        odd_keys = [
            trial.key() for trial in spec.trials() if trial.seed % 2
        ]
        dump = str(tmp_path / "odd.jsonl")
        assert full.export(dump, keys=odd_keys) == 4
        partial = TrialCache(str(tmp_path / "partial"))
        partial.import_file(dump)
        report = run_experiment(spec, cache=partial, batch_size=2)
        assert report.records == oracle.records
        assert report.cache_hits == 4 and report.computed == 4
        assert report.batches == 2  # [0,2] and [4,6], not four singletons

    def test_merge_rejects_incomplete_and_foreign_reports(self):
        plan = plan_experiment(PARITY_SPEC, num_shards=2, batch_size=2)
        reports = [run_shard(m) for m in plan.manifests()]
        with pytest.raises(ValueError, match="at least one"):
            merge_shard_reports([])
        with pytest.raises(ValueError, match="incomplete"):
            merge_shard_reports(reports[:1])
        with pytest.raises(ValueError, match="incomplete"):
            merge_shard_reports([reports[0], reports[0]])
        other = plan_experiment(PARITY_SPEC, num_shards=2, batch_size=3)
        alien = run_shard(other.manifest(1))
        with pytest.raises(ValueError, match="different plans"):
            merge_shard_reports([reports[0], alien])

    def test_sharded_cache_roots_merge_into_a_full_replay(self, tmp_path):
        plan = plan_experiment(PARITY_SPEC, num_shards=3, batch_size=2)
        for manifest in plan.manifests():
            run_shard(
                manifest,
                cache=TrialCache(
                    str(tmp_path / "base"),
                    isolation=str(tmp_path / f"s{manifest.shard_index}"),
                ),
            )
        base = TrialCache(str(tmp_path / "base"))
        added = sum(
            base.merge(str(tmp_path / f"s{i}")) for i in range(3)
        )
        assert added == 9
        warm = run_experiment(
            PARITY_SPEC, cache=TrialCache(str(tmp_path / "base"))
        )
        assert warm.cache_hits == warm.trials_total == 9


class TestLandscapeAcceptance:
    def test_k4_shuffled_shards_match_the_single_host_landscape(
        self, tmp_path
    ):
        """The acceptance criterion, end to end: a landscape run split
        into K=4 shards, executed in shuffled order with per-shard
        cache roots, then merged, is byte-identical to K=1 — records
        and the rendered Figure 1 table."""
        from repro.analysis import render_landscape
        from repro.analysis.landscape import rows_from_engine_reports

        specs = build_experiment("landscape", max_n=128, seed_count=2)
        single_reports = [
            run_experiment(spec, cache=TrialCache(str(tmp_path / "single")))
            for spec in specs
        ]
        single_table = render_landscape(
            rows_from_engine_reports(single_reports)
        )

        plans = [
            plan_experiment(spec, num_shards=4, batch_size=2)
            for spec in specs
        ]
        jobs = [
            (plan, shard_index)
            for plan in plans
            for shard_index in range(4)
        ]
        random.Random(7).shuffle(jobs)  # any order, interleaved specs
        by_spec: dict[str, list] = {}
        for plan, shard_index in jobs:
            cache = TrialCache(
                str(tmp_path / "shared"),
                isolation=str(tmp_path / f"shard-{shard_index}"),
            )
            report = run_shard(plan.manifest(shard_index), cache=cache)
            by_spec.setdefault(plan.spec.name, []).append(report)
        merged_reports = [
            merge_shard_reports(by_spec[spec.name]) for spec in specs
        ]

        for single, merged in zip(single_reports, merged_reports):
            assert merged.records == single.records
            assert json.dumps(merged.records, sort_keys=True) == json.dumps(
                single.records, sort_keys=True
            )
            assert merged.sweep == single.sweep
        merged_table = render_landscape(
            rows_from_engine_reports(merged_reports)
        )
        assert merged_table == single_table

        # And the merged cache replays every shard's work: union the
        # four private roots, then rerun the whole landscape all-hits.
        base = TrialCache(str(tmp_path / "shared"))
        for shard_index in range(4):
            base.merge(str(tmp_path / f"shard-{shard_index}"))
        replay = [
            run_experiment(
                spec, cache=TrialCache(str(tmp_path / "shared"))
            )
            for spec in specs
        ]
        assert all(rep.computed == 0 for rep in replay)
        assert [rep.records for rep in replay] == [
            rep.records for rep in single_reports
        ]


class TestCacheAlgebra:
    def _filled(self, root, items):
        cache = TrialCache(str(root))
        cache.put_many(items)
        return cache

    def test_merge_is_idempotent(self, tmp_path):
        a = self._filled(tmp_path / "a", [("aa1", {"x": 1}), ("bb2", {"x": 2})])
        b = self._filled(tmp_path / "b", [("aa1", {"x": 1}), ("cc3", {"x": 3})])
        assert b.merge(str(tmp_path / "a")) == 1  # only bb2 is new
        assert b.merge(str(tmp_path / "a")) == 0  # idempotent
        again = TrialCache(str(tmp_path / "b"))
        assert again.merge(str(tmp_path / "a")) == 0  # on disk, too

    def test_merge_is_commutative(self, tmp_path):
        items_a = [("aa1", {"x": 1}), ("bb2", {"x": 2})]
        items_b = [("cc3", {"x": 3}), ("dd4", {"x": 4})]
        self._filled(tmp_path / "a", items_a)
        self._filled(tmp_path / "b", items_b)
        ab = TrialCache(str(tmp_path / "ab"))
        ab.merge(str(tmp_path / "a"))
        ab.merge(str(tmp_path / "b"))
        ba = TrialCache(str(tmp_path / "ba"))
        ba.merge(str(tmp_path / "b"))
        ba.merge(str(tmp_path / "a"))
        for cache in (ab, ba):
            cache.load_all()
        assert ab._index == ba._index
        assert len(ab) == 4

    def test_merge_missing_root_rejected(self, tmp_path):
        cache = TrialCache(str(tmp_path / "cache"))
        with pytest.raises(ValueError, match="does not exist"):
            cache.merge(str(tmp_path / "nope"))

    def test_export_import_round_trip(self, tmp_path):
        items = [("aa1", {"x": 1}), ("bb2", {"x": 2}), ("cc3", {"x": 3})]
        cache = self._filled(tmp_path / "src", items)
        out = str(tmp_path / "dump.jsonl")
        assert cache.export(out) == 3
        dest = TrialCache(str(tmp_path / "dest"))
        assert dest.import_file(out) == (3, 0)
        assert dest.import_file(out) == (0, 0)  # idempotent
        for key, record in items:
            assert dest.get(key) == record

    def test_export_selected_keys(self, tmp_path):
        cache = self._filled(
            tmp_path / "src", [("aa1", {"x": 1}), ("bb2", {"x": 2})]
        )
        out = str(tmp_path / "dump.jsonl")
        assert cache.export(out, keys=["bb2", "zz9"]) == 1
        with open(out, encoding="utf-8") as handle:
            lines = handle.read().splitlines()
        assert len(lines) == 1 and '"bb2"' in lines[0]

    def test_export_dedups_repeated_keys(self, tmp_path):
        # Keys gathered from overlapping manifests repeat; the export
        # must not crash sorting equal keys nor write duplicates.
        cache = self._filled(tmp_path / "src", [("aa1", {"x": 1})])
        out = str(tmp_path / "dump.jsonl")
        assert cache.export(out, keys=["aa1", "aa1"]) == 1
        with open(out, encoding="utf-8") as handle:
            assert len(handle.read().splitlines()) == 1

    def test_torn_tail_tolerated_everywhere(self, tmp_path):
        cache = self._filled(tmp_path / "src", [("aa1", {"x": 1})])
        out = str(tmp_path / "dump.jsonl")
        cache.export(out)
        with open(out, "a", encoding="utf-8") as handle:
            handle.write('{"key": "bb2", "record": {"x"')  # killed mid-write
        dest = TrialCache(str(tmp_path / "dest"))
        assert dest.import_file(out) == (1, 1)  # one good, one torn
        assert dest.stats.torn_lines == 1
        assert dest.get("aa1") == {"x": 1}
        # The same torn line inside a shard file is skipped on load.
        shard = os.path.join(str(tmp_path / "dest"), "aa.jsonl")
        with open(shard, "a", encoding="utf-8") as handle:
            handle.write('{"key": "aa9", "rec')
        fresh = TrialCache(str(tmp_path / "dest"))
        assert fresh.get("aa1") == {"x": 1}
        assert fresh.get("aa9") is None

    def test_import_missing_file_rejected(self, tmp_path):
        cache = TrialCache(str(tmp_path / "cache"))
        with pytest.raises(ValueError, match="does not exist"):
            cache.import_file(str(tmp_path / "nope.jsonl"))

    def test_isolation_writes_stay_private(self, tmp_path):
        base_root = str(tmp_path / "base")
        private = str(tmp_path / "private")
        TrialCache(base_root).put("aa1", {"x": 1})
        shard = TrialCache(base_root, isolation=private)
        assert shard.get("aa1") == {"x": 1}  # reads see the shared root
        shard.put("bb2", {"x": 2})
        assert shard.get("bb2") == {"x": 2}
        assert TrialCache(base_root).get("bb2") is None  # base untouched
        assert os.path.exists(os.path.join(private, "bb.jsonl"))
        merged = TrialCache(base_root)
        assert merged.merge(private) == 1
        assert TrialCache(base_root).get("bb2") == {"x": 2}

    def test_isolation_wins_over_the_shared_root(self, tmp_path):
        base_root = str(tmp_path / "base")
        TrialCache(base_root).put("aa1", {"x": "stale"})
        shard = TrialCache(base_root, isolation=str(tmp_path / "private"))
        shard.put("aa1", {"x": "fresh"})
        again = TrialCache(base_root, isolation=str(tmp_path / "private"))
        assert again.get("aa1") == {"x": "fresh"}


class TestCompaction:
    def test_compact_drops_duplicate_appends_and_preserves_the_index(
        self, tmp_path
    ):
        root = str(tmp_path / "cache")
        cache = TrialCache(root)
        for _ in range(3):
            cache.put("aa1", {"x": 1})
            cache.put("aa2", {"x": 2})
        cache.put("bb1", {"x": 3})
        before = TrialCache(root)
        before.load_all()
        kept, dropped = TrialCache(root).compact()
        assert (kept, dropped) == (3, 4)
        after = TrialCache(root)
        after.load_all()
        assert after._index == before._index
        # Idempotent: a second pass finds nothing to drop.
        assert TrialCache(root).compact() == (3, 0)

    def test_compacted_cache_still_replays_the_engine_run(self, tmp_path):
        root = str(tmp_path / "cache")
        run_experiment(PARITY_SPEC, cache=TrialCache(root))
        # Force duplicate lines the way an interrupted rerun would.
        dup = TrialCache(root)
        dup.load_all()
        dup.put_many(list(dup._index.items()))
        kept, dropped = TrialCache(root).compact()
        assert kept == 9 and dropped == 9
        warm = run_experiment(PARITY_SPEC, cache=TrialCache(root))
        assert warm.cache_hits == warm.trials_total == 9


class TestIterRecords:
    def test_yields_every_record_in_stream_order(self):
        stream = []
        iterator = iter_records(PARITY_SPEC, workers=2, batch_size=2)
        try:
            while True:
                stream.append(next(iterator))
        except StopIteration as stop:
            report = stop.value
        assert stream == report.records
        assert report.trials_total == 9

    def test_mixes_cache_hits_and_computed(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        narrower = registry_spec(
            "test/degree-parity/parity@cycle",
            "parity",
            "degree-parity",
            "cycle",
            ns=(8, 12),
            seeds=(0, 1, 2),
        )
        run_experiment(narrower, cache=TrialCache(cache_dir))
        stream = list(
            iter_records(PARITY_SPEC, cache=TrialCache(cache_dir))
        )
        assert len(stream) == 9
        assert [r["n"] for r in stream[:6]] == [8, 8, 8, 12, 12, 12]

    def test_abandoning_the_generator_cancels_the_run(self):
        iterator = iter_records(PARITY_SPEC, workers=1, batch_size=1)
        first = next(iterator)
        assert first["n"] == 8
        iterator.close()  # must neither hang nor raise

    def test_warm_cache_keys_auto_batch_off_the_missing_subset(
        self, tmp_path
    ):
        # 16 sizes x 2 seeds: the full grid auto-sizes to 8-trial
        # chunks on one worker, but after warming all but the last
        # size, the 2-trial remainder must be sized for itself.
        wide = registry_spec(
            "test/degree-parity/parity@cycle-wide",
            "parity",
            "degree-parity",
            "cycle",
            ns=tuple(range(4, 20)),
            seeds=(0, 1),
        )
        narrower = registry_spec(
            wide.name, "parity", "degree-parity", "cycle",
            ns=wide.ns[:-1], seeds=wide.seeds,
        )
        cache_dir = str(tmp_path / "cache")
        cold = run_experiment(wide, cache=TrialCache(cache_dir))
        assert cold.batch_size == 8
        run_experiment(narrower, cache=TrialCache(str(tmp_path / "warm")))
        cache = TrialCache(str(tmp_path / "warm"))
        warm = run_experiment(wide, cache=cache)
        assert warm.computed == 2
        assert warm.batch_size == 2  # sized for the remainder, not the grid

    def test_propagates_failures(self):
        bad = ExperimentSpec(
            name="test/iter-bad-verify",
            solver=solver_ref("parity"),
            generator=family_ref("cycle"),
            verifier="tests.test_sharded_engine:_always_fail",
            ns=(8,),
            seeds=(0,),
        )
        with pytest.raises(AssertionError, match="nope"):
            list(iter_records(bad))


def _always_fail(instance, result):
    raise AssertionError("nope")


class TestCli:
    def _plan_file(self, tmp_path, shards=2):
        path = str(tmp_path / "plan.json")
        code = engine_main(
            [
                "plan",
                "--experiment",
                "sinkless",
                "--max-n",
                "128",
                "--shards",
                str(shards),
                "--batch-size",
                "2",
                "--out",
                path,
            ]
        )
        assert code == 0
        return path

    def test_plan_run_shard_merge_status_round_trip(self, tmp_path, capsys):
        plan_path = self._plan_file(tmp_path)
        merged_dir = str(tmp_path / "merged")
        for shard in ("0/2", "1/2"):
            code = engine_main(
                [
                    "run-shard",
                    "--plan",
                    plan_path,
                    "--shard",
                    shard,
                    "--workers",
                    "1",
                    "--cache-dir",
                    merged_dir,
                    "--cache-out",
                    str(tmp_path / f"s{shard[0]}"),
                ]
            )
            assert code == 0
        out = capsys.readouterr().out
        assert "shard 0/2" in out and "shard 1/2" in out
        code = engine_main(
            [
                "merge",
                "--plan",
                plan_path,
                "--cache-dir",
                merged_dir,
                "--from",
                str(tmp_path / "s0"),
                str(tmp_path / "s1"),
                "--compact",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "merged 2 shard root(s)" in out
        assert ", 0 computed during merge" in out
        code = engine_main(
            ["status", "--plan", plan_path, "--cache-dir", merged_dir]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "complete" in out and "without computing" in out

    def test_merge_computes_the_remainder_of_a_partial_plan(
        self, tmp_path, capsys
    ):
        plan_path = self._plan_file(tmp_path)
        merged_dir = str(tmp_path / "merged")
        engine_main(
            [
                "run-shard",
                "--plan",
                plan_path,
                "--shard",
                "0",
                "--workers",
                "1",
                "--cache-dir",
                merged_dir,
            ]
        )
        capsys.readouterr()
        code = engine_main(
            [
                "status", "--plan", plan_path, "--cache-dir", merged_dir,
            ]
        )
        assert code == 0
        assert "remaining" in capsys.readouterr().out
        code = engine_main(
            [
                "merge",
                "--plan",
                plan_path,
                "--cache-dir",
                merged_dir,
                "--workers",
                "1",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert ", 0 computed during merge" not in out

    def test_status_sees_unmerged_cache_out_roots(self, tmp_path, capsys):
        # The documented scheduler probe: shards write private
        # --cache-out roots; status --from must count them as done
        # before any merge happens.
        plan_path = self._plan_file(tmp_path)
        merged_dir = str(tmp_path / "merged")
        for shard in ("0/2", "1/2"):
            engine_main(
                [
                    "run-shard",
                    "--plan",
                    plan_path,
                    "--shard",
                    shard,
                    "--workers",
                    "1",
                    "--cache-dir",
                    merged_dir,
                    "--cache-out",
                    str(tmp_path / f"s{shard[0]}"),
                ]
            )
        capsys.readouterr()
        code = engine_main(
            ["status", "--plan", plan_path, "--cache-dir", merged_dir]
        )
        assert code == 0
        assert "remaining" in capsys.readouterr().out  # merged root is empty
        code = engine_main(
            [
                "status",
                "--plan",
                plan_path,
                "--cache-dir",
                merged_dir,
                "--from",
                str(tmp_path / "s0"),
                str(tmp_path / "s1"),
            ]
        )
        assert code == 0
        assert "plan complete" in capsys.readouterr().out
        code = engine_main(
            [
                "status",
                "--plan",
                plan_path,
                "--cache-dir",
                merged_dir,
                "--from",
                str(tmp_path / "nope"),
            ]
        )
        assert code == 2
        assert "does not exist" in capsys.readouterr().err

    def test_read_only_subcommands_reject_a_missing_cache_dir(
        self, tmp_path, capsys
    ):
        # A typo'd --cache-dir must error, not be silently created and
        # report a finished plan as all-remaining.
        plan_path = self._plan_file(tmp_path)
        for argv in (
            ["status", "--plan", plan_path, "--cache-dir", str(tmp_path / "x")],
            ["cache", "--cache-dir", str(tmp_path / "x")],
        ):
            assert engine_main(argv) == 2, argv
            assert "does not exist" in capsys.readouterr().err
            assert not (tmp_path / "x").exists()

    def test_invalid_shard_spec_rejected(self, tmp_path, capsys):
        plan_path = self._plan_file(tmp_path)
        for bad in ("2/2", "0/3", "-1"):
            code = engine_main(
                ["run-shard", "--plan", plan_path, "--shard", bad]
            )
            assert code == 2, bad
            assert "error:" in capsys.readouterr().err

    def test_cache_compact_subcommand(self, tmp_path, capsys):
        root = str(tmp_path / "cache")
        cache = TrialCache(root)
        cache.put("aa1", {"x": 1})
        cache.put("aa1", {"x": 1})
        code = engine_main(["cache", "--cache-dir", root, "--compact"])
        assert code == 0
        assert "dropped 1 stale line(s)" in capsys.readouterr().out
        code = engine_main(["cache", "--cache-dir", root])
        assert code == 0
        assert "1 record(s) on disk" in capsys.readouterr().out

    def test_list_exposes_unsound_probes(self, capsys):
        assert engine_main(["list"]) == 0
        out = capsys.readouterr().out
        assert "corrupt-wrong-index" in out
        assert "declared-unsound probe triples" in out
        assert engine_main(["describe", "gadget-prover"]) == 0
        out = capsys.readouterr().out
        assert "verifier must reject" in out

    def test_progressive_landscape_table_on_stderr(self, tmp_path, capsys):
        code = engine_main(
            [
                "run",
                "--experiment",
                "landscape",
                "--max-n",
                "64",
                "--seeds",
                "1",
                "--workers",
                "1",
                "--progress",
                "--cache-dir",
                str(tmp_path / "cache"),
            ]
        )
        assert code == 0
        captured = capsys.readouterr()
        # The partial table streams to stderr while specs complete...
        assert "Figure 1" in captured.err
        assert "specs]" in captured.err
        # ...and the final table still lands on stdout.
        assert "Figure 1" in captured.out
