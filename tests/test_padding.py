"""Tests for padded graphs (Definition 3) and the decomposition layer."""

from __future__ import annotations

import random

import pytest

from repro.core import (
    GADEDGE,
    PORTEDGE,
    PORT_ERR1,
    PORT_ERR2,
    PORT_OK,
    decompose,
    pad_graph,
)
from repro.gadgets import LogGadgetFamily, build_gadget
from repro.generators import complete, cycle, path
from repro.local import GraphBuilder, PortGraph
from repro.local.identifiers import sequential_ids


def _pad(base, delta=3, height=3):
    gadgets = [build_gadget(delta, height) for _ in base.nodes()]
    return pad_graph(base, gadgets)


class TestPadGraph:
    def test_node_and_edge_counts(self):
        base = cycle(4)
        padded = _pad(base, delta=3, height=3)
        gadget_nodes = 3 * 7 + 1
        assert padded.graph.num_nodes == 4 * gadget_nodes
        # per gadget: internal edges; plus one port edge per base edge
        internal = padded.graph.num_edges - base.num_edges
        assert len(padded.port_edges) == base.num_edges
        assert internal == 4 * (padded.gadget_of[0].graph.num_edges)

    def test_edge_tags(self):
        base = path(3)
        padded = _pad(base)
        tags = [padded.edge_tag(e) for e in range(padded.graph.num_edges)]
        assert tags.count(PORTEDGE) == base.num_edges
        assert tags.count(GADEDGE) == padded.graph.num_edges - base.num_edges

    def test_port_edges_join_matching_ports(self):
        base = cycle(3)
        padded = _pad(base)
        for base_eid, padded_eid in enumerate(padded.port_edges):
            base_edge = base.edge(base_eid)
            padded_edge = padded.graph.edge(padded_eid)
            u, a = base_edge.a
            v, b = base_edge.b
            expected = {
                padded.padded_node(u, padded.gadget_of[u].ports[a]),
                padded.padded_node(v, padded.gadget_of[v].ports[b]),
            }
            assert set(padded_edge.nodes()) == expected

    def test_degree_requirement(self):
        base = complete(5)  # degree 4
        gadgets = [build_gadget(3, 2) for _ in base.nodes()]
        with pytest.raises(ValueError):
            pad_graph(base, gadgets)

    def test_base_self_loop_becomes_intra_gadget_port_edge(self):
        builder = GraphBuilder(1)
        builder.add_edge(0, 0)
        base = builder.build()
        padded = _pad(base, delta=2, height=2)
        eid = padded.port_edges[0]
        edge = padded.graph.edge(eid)
        gadget = padded.gadget_of[0]
        assert set(edge.nodes()) == {gadget.ports[0], gadget.ports[1]}

    def test_base_inputs_travel(self):
        from repro.lcl import Labeling

        base = path(2)
        base_inputs = Labeling(base)
        base_inputs.set_node(0, "left")
        base_inputs.set_node(1, "right")
        base_inputs.set_edge(0, "the-edge")
        gadgets = [build_gadget(2, 2), build_gadget(2, 2)]
        padded = pad_graph(base, gadgets, base_inputs)
        # every node of gadget 0 carries the base node input
        for x in padded.gadget_nodes(0):
            assert padded.inputs.node(x).pi == "left"
        eid = padded.port_edges[0]
        assert padded.inputs.edge(eid).pi == "the-edge"


class TestDecompose:
    def test_valid_padding_decomposes_cleanly(self):
        base = cycle(5)
        padded = _pad(base)
        family = LogGadgetFamily(3)
        ids = sequential_ids(padded.graph.num_nodes)
        decomposition = decompose(
            padded.graph, padded.inputs, family, ids, padded.graph.num_nodes
        )
        assert len(decomposition.components) == 5
        assert all(c.is_valid for c in decomposition.components)
        virtual = decomposition.virtual
        assert virtual.num_real() == 5
        assert virtual.graph.num_edges == 5
        # contraction of a cycle is the cycle
        degrees = sorted(virtual.graph.degree(a) for a in virtual.graph.nodes())
        assert degrees == [2] * 5

    def test_port_status_all_ok_on_valid_padding(self):
        base = cycle(3)
        padded = _pad(base)
        family = LogGadgetFamily(3)
        decomposition = decompose(
            padded.graph,
            padded.inputs,
            family,
            sequential_ids(padded.graph.num_nodes),
            padded.graph.num_nodes,
        )
        used_ports = {
            status for status in decomposition.port_status.values()
        }
        # degree-2 base nodes leave one port unused per gadget: that
        # port has no port edge -> PortErr2; connected ones are OK
        assert used_ports == {PORT_OK, PORT_ERR2}
        ok = sum(1 for s in decomposition.port_status.values() if s == PORT_OK)
        assert ok == 2 * base.num_edges

    def test_virtual_ids_are_gadget_minima(self):
        base = path(2)
        padded = _pad(base, delta=2, height=2)
        ids = sequential_ids(padded.graph.num_nodes)
        decomposition = decompose(
            padded.graph, padded.inputs, LogGadgetFamily(2), ids,
            padded.graph.num_nodes,
        )
        virtual = decomposition.virtual
        expected = {min(ids.of(v) for v in comp.nodes) for comp in decomposition.components}
        actual = {virtual.ids.of(a) for a in virtual.graph.nodes()}
        assert expected <= actual

    def test_corrupted_gadget_not_contracted(self):
        from repro.gadgets import corrupt

        base = path(2)
        g0 = build_gadget(2, 3)
        g1 = build_gadget(2, 3)
        padded = pad_graph(base, [g0, g1])
        # corrupt gadget 1 by stealing its port tag
        from repro.gadgets.labels import GadgetNodeInput, NOPORT

        inputs = padded.inputs.copy()
        victim = padded.padded_node(1, g1.ports[0])
        old = inputs.node(victim)
        from repro.core import PaddedInput

        inputs.set_node(
            victim,
            PaddedInput(old.pi, GadgetNodeInput(old.gadget.role, NOPORT, old.gadget.color)),
        )
        decomposition = decompose(
            padded.graph, inputs, LogGadgetFamily(2),
            sequential_ids(padded.graph.num_nodes), padded.graph.num_nodes,
        )
        valid = [c for c in decomposition.components if c.is_valid]
        invalid = [c for c in decomposition.components if not c.is_valid]
        assert len(valid) == 1 and len(invalid) == 1
        virtual = decomposition.virtual
        assert virtual.num_real() == 1
        # the far side is no longer a Port, so the valid gadget's port is
        # PortErr1 and the virtual node is isolated (no dangling stub)
        assert virtual.graph.num_nodes == 1
        assert virtual.graph.num_edges == 0
        port = padded.padded_node(0, g0.ports[0])
        assert decomposition.port_status[port] == PORT_ERR1

    def test_dangling_from_port_err2(self):
        """Two base edges into the same gadget port -> PortErr2 there,
        dangling stubs for the two far ports."""
        builder = GraphBuilder(3)
        builder.add_edge(0, 1)  # port 0 of node 1
        builder.add_edge(2, 1)  # port 1 of node 1
        base = builder.build()
        g = [build_gadget(2, 3) for _ in base.nodes()]
        padded = pad_graph(base, g)
        # move node 1's second port edge onto its first port node by
        # splicing the padded graph: rebuild edges so both port edges of
        # gadget 1 attach to ports[0]
        target = padded.padded_node(1, g[1].ports[0])
        old_attach = padded.padded_node(1, g[1].ports[1])
        edges = []
        for edge in padded.graph.edges():
            a, b = edge.a, edge.b
            nodes = [a.node, b.node]
            if edge.eid == padded.port_edges[1]:
                # reattach the far endpoint onto `target`
                keep = a if a.node != old_attach else b
                edges.append((keep.node, target))
            else:
                edges.append((a.node, b.node))
        graph = PortGraph.from_edge_list(padded.graph.num_nodes, edges)
        # rebuild inputs by node (ports moved, so halves are rebuilt
        # against the gadget labels where possible)
        from repro.lcl import Labeling

        inputs = Labeling(graph)
        for v in graph.nodes():
            inputs.set_node(v, padded.inputs.node(v))
        # edges keep their insertion order, so tags carry over by eid
        for eid in range(graph.num_edges):
            inputs.set_edge(eid, padded.inputs.edge(eid))
        # halves: copy gadget half labels port-by-port where the degree
        # allows; the spliced port edge halves stay EMPTY-pi
        for v in graph.nodes():
            for port in range(min(graph.degree(v), padded.graph.degree(v))):
                if graph.edge_id_at(v, port) == padded.graph.edge_id_at(v, port):
                    from repro.local import HalfEdge

                    inputs.set_half(
                        HalfEdge(v, port), padded.inputs.half_at(v, port)
                    )
        decomposition = decompose(
            graph, inputs, LogGadgetFamily(2),
            sequential_ids(graph.num_nodes), graph.num_nodes,
        )
        # gadget components are untouched: all three stay valid
        assert all(c.is_valid for c in decomposition.components)
        assert decomposition.port_status[target] == PORT_ERR2
        virtual = decomposition.virtual
        # nodes 0 and 2 keep NoPortErr ports -> two dangling stubs
        assert virtual.num_real() == 3
        dummies = virtual.graph.num_nodes - 3
        assert dummies == 2

    def test_garbage_graph_fully_invalid(self):
        from repro.lcl import Labeling

        graph = complete(6)
        inputs = Labeling(graph)  # no tags at all: one giant gadget comp
        decomposition = decompose(
            graph, inputs, LogGadgetFamily(3), sequential_ids(6), 6
        )
        assert all(not c.is_valid for c in decomposition.components)
        assert decomposition.virtual.num_real() == 0
