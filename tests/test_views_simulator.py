"""Tests for the view oracle, radius metering, and the synchronous engine."""

from __future__ import annotations

import pytest

from repro.generators import cycle, path
from repro.local import Instance, PortGraph, SyncEngine, ViewOracle
from repro.local.identifiers import sequential_ids


class TestViewOracle:
    def test_view_contents_grow_with_radius(self):
        graph = path(9)
        oracle = ViewOracle(graph)
        v0 = oracle.view(4, 0)
        assert v0.nodes() == [4]
        v2 = oracle.view(4, 2)
        assert v2.nodes() == [2, 3, 4, 5, 6]
        assert v2.boundary() == [2, 6]

    def test_metering_tracks_max(self):
        graph = cycle(10)
        oracle = ViewOracle(graph)
        oracle.view(0, 1)
        oracle.view(0, 3)
        oracle.view(0, 2)
        assert oracle.radius_used(0) == 3
        assert oracle.rounds() == 3

    def test_charge_without_view(self):
        graph = cycle(5)
        oracle = ViewOracle(graph)
        oracle.charge(2, 7)
        assert oracle.radius_used(2) == 7
        assert oracle.node_radii() == [0, 0, 7, 0, 0]

    def test_charge_rejects_negative(self):
        oracle = ViewOracle(cycle(3))
        with pytest.raises(ValueError):
            oracle.charge(0, -1)

    def test_view_beyond_component_saturates(self):
        graph = path(4)
        oracle = ViewOracle(graph)
        view = oracle.view(0, 50)
        assert view.nodes() == [0, 1, 2, 3]

    def test_incremental_growth_consistent_with_fresh(self):
        graph = cycle(12)
        grown = ViewOracle(graph)
        for r in (1, 2, 5):
            fresh = ViewOracle(graph).view(3, r)
            incremental = grown.view(3, r)
            assert fresh.dist == incremental.dist

    def test_subgraph_of_view(self):
        graph = cycle(8)
        oracle = ViewOracle(graph)
        sub, mapping = oracle.view(0, 2).subgraph()
        assert sub.num_nodes == 5
        assert sub.num_edges == 4  # an arc of the cycle


class _FloodNode:
    """Counts rounds until it has heard from everyone (diameter probe).

    Floods deltas: each round a node forwards only what it learned the
    round before.  An id at distance d still arrives in exactly d
    rounds, so heard sets, halting rounds, and results are identical to
    re-broadcasting the full heard set — but messages stay
    frontier-sized instead of ball-sized.
    """

    def __init__(self, v: int, instance: Instance):
        self.v = v
        self.n = instance.graph.num_nodes
        self.degree = instance.graph.degree(v)
        self.heard = {v}
        self.fresh = frozenset((v,))
        self.done_at: int | None = 0 if self.n == 1 else None

    def outgoing(self, round_index):
        if self.done_at is not None:
            return None
        return [self.fresh] * self.degree

    def receive(self, round_index, inbox):
        heard = self.heard
        fresh = set().union(*(m for m in inbox if m)) - heard
        heard |= fresh
        self.fresh = frozenset(fresh)
        if len(heard) == self.n:
            self.done_at = round_index + 1

    def result(self):
        return self.done_at


class TestSyncEngine:
    def test_flooding_takes_eccentricity_rounds(self):
        graph = cycle(10)
        instance = Instance(graph, sequential_ids(10))
        engine = SyncEngine(instance, _FloodNode)
        result = engine.run()
        # every node hears everyone after exactly ecc = 5 message rounds
        assert result.rounds == 5
        assert all(r == 5 for r in result.results)

    def test_single_node_halts_immediately(self):
        graph = PortGraph(1, [])
        instance = Instance(graph, sequential_ids(1))
        result = SyncEngine(instance, _FloodNode).run()
        assert result.rounds == 0
        assert result.results == [0]

    def test_wrong_message_count_raises(self):
        class BadNode(_FloodNode):
            def outgoing(self, round_index):
                return []  # wrong: must equal degree

        graph = cycle(4)
        instance = Instance(graph, sequential_ids(4))
        with pytest.raises(ValueError):
            SyncEngine(instance, BadNode).run()

    def test_nonconvergence_raises(self):
        class ForeverNode(_FloodNode):
            def outgoing(self, round_index):
                return [0] * self.degree

        graph = cycle(4)
        instance = Instance(graph, sequential_ids(4))
        with pytest.raises(RuntimeError):
            SyncEngine(instance, ForeverNode).run(max_rounds=10)

    def test_nonconvergence_carries_diagnostics(self):
        from repro.local import ConvergenceError

        class ForeverNode(_FloodNode):
            def outgoing(self, round_index):
                return [0] * self.degree

        graph = cycle(4)
        instance = Instance(graph, sequential_ids(4))
        with pytest.raises(ConvergenceError) as excinfo:
            SyncEngine(instance, ForeverNode).run(max_rounds=10)
        err = excinfo.value
        assert err.max_rounds == 10
        assert err.active == 4  # nobody ever halts
        assert len(err.trace) == 10  # the partial trace survives
        assert all(r.active == 4 for r in err.trace)
        assert "10 rounds" in str(err) and "4 node(s)" in str(err)

    def test_node_radius_uniform(self):
        graph = cycle(6)
        instance = Instance(graph, sequential_ids(6))
        result = SyncEngine(instance, _FloodNode).run()
        assert result.node_radius() == [result.rounds] * 6

    def test_node_radius_per_component(self):
        """A small and a large component halt at their own eccentricities.

        (Flood nodes count the whole graph as n, but a component is done
        once its own ids stop being fresh... so pass each component's
        size via per-node closures instead: each node waits for exactly
        its component's node count.)
        """
        from repro.generators import disjoint_union

        graph = disjoint_union(cycle(3), cycle(7))

        class ComponentFlood(_FloodNode):
            def __init__(self, v: int, instance: Instance):
                super().__init__(v, instance)
                self.n = 3 if v < 3 else 7  # component size, not graph size

        instance = Instance(graph, sequential_ids(10))
        result = SyncEngine(instance, ComponentFlood).run()
        # cycle(3) has eccentricity 1, cycle(7) eccentricity 3
        expected = [1, 1, 1, 3, 3, 3, 3, 3, 3, 3]
        assert result.node_radius() == expected
        assert result.halt_rounds == expected
        assert result.rounds == 3  # the big component halts last

    def test_late_halter_keeps_engine_running(self):
        """Early halters stop being charged while others continue."""

        class StaggeredNode:
            def __init__(self, v: int, instance: Instance):
                self.v = v
                self.degree = instance.graph.degree(v)

            def outgoing(self, round_index):
                return None if round_index >= self.v else [0] * self.degree

            def receive(self, round_index, inbox):
                pass

            def result(self):
                return self.v

        graph = cycle(5)
        instance = Instance(graph, sequential_ids(5))
        result = SyncEngine(instance, StaggeredNode).run()
        assert result.halt_rounds == [0, 1, 2, 3, 4]
        assert result.rounds == 4


class TestInstance:
    def test_n_hint_defaults_to_size(self):
        graph = cycle(5)
        instance = Instance(graph, sequential_ids(5))
        assert instance.n_hint == 5

    def test_n_hint_must_cover_graph(self):
        graph = cycle(5)
        with pytest.raises(ValueError):
            Instance(graph, sequential_ids(5), n_hint=4)

    def test_id_size_mismatch(self):
        graph = cycle(5)
        with pytest.raises(ValueError):
            Instance(graph, sequential_ids(4))

    def test_require_rng(self):
        graph = cycle(5)
        instance = Instance(graph, sequential_ids(5))
        with pytest.raises(ValueError):
            instance.require_rng()
        seeded = Instance.simple(graph, seed=7)
        assert seeded.require_rng() is seeded.rng
