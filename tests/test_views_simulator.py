"""Tests for the view oracle, radius metering, and the synchronous engine."""

from __future__ import annotations

import pytest

from repro import kernels
from repro.generators import cycle, path
from repro.local import ConvergenceError, Instance, PortGraph, SyncEngine, ViewOracle
from repro.local.identifiers import sequential_ids

needs_numpy = pytest.mark.skipif(
    not kernels.HAVE_NUMPY, reason="the batched engine path needs numpy"
)


class TestViewOracle:
    def test_view_contents_grow_with_radius(self):
        graph = path(9)
        oracle = ViewOracle(graph)
        v0 = oracle.view(4, 0)
        assert v0.nodes() == [4]
        v2 = oracle.view(4, 2)
        assert v2.nodes() == [2, 3, 4, 5, 6]
        assert v2.boundary() == [2, 6]

    def test_metering_tracks_max(self):
        graph = cycle(10)
        oracle = ViewOracle(graph)
        oracle.view(0, 1)
        oracle.view(0, 3)
        oracle.view(0, 2)
        assert oracle.radius_used(0) == 3
        assert oracle.rounds() == 3

    def test_charge_without_view(self):
        graph = cycle(5)
        oracle = ViewOracle(graph)
        oracle.charge(2, 7)
        assert oracle.radius_used(2) == 7
        assert oracle.node_radii() == [0, 0, 7, 0, 0]

    def test_charge_rejects_negative(self):
        oracle = ViewOracle(cycle(3))
        with pytest.raises(ValueError):
            oracle.charge(0, -1)

    def test_view_beyond_component_saturates(self):
        graph = path(4)
        oracle = ViewOracle(graph)
        view = oracle.view(0, 50)
        assert view.nodes() == [0, 1, 2, 3]

    def test_incremental_growth_consistent_with_fresh(self):
        graph = cycle(12)
        grown = ViewOracle(graph)
        for r in (1, 2, 5):
            fresh = ViewOracle(graph).view(3, r)
            incremental = grown.view(3, r)
            assert fresh.dist == incremental.dist

    def test_subgraph_of_view(self):
        graph = cycle(8)
        oracle = ViewOracle(graph)
        sub, mapping = oracle.view(0, 2).subgraph()
        assert sub.num_nodes == 5
        assert sub.num_edges == 4  # an arc of the cycle


# The delta-flooding diameter probe now lives in the library (it grew a
# batched twin); `tests.test_flat_core` and the simulator benchmark still
# import it from here.
from repro.local.flood import FloodNode as _FloodNode  # noqa: E402


class TestSyncEngine:
    def test_flooding_takes_eccentricity_rounds(self):
        graph = cycle(10)
        instance = Instance(graph, sequential_ids(10))
        engine = SyncEngine(instance, _FloodNode)
        result = engine.run()
        # every node hears everyone after exactly ecc = 5 message rounds
        assert result.rounds == 5
        assert all(r == 5 for r in result.results)

    def test_single_node_halts_immediately(self):
        graph = PortGraph(1, [])
        instance = Instance(graph, sequential_ids(1))
        result = SyncEngine(instance, _FloodNode).run()
        assert result.rounds == 0
        assert result.results == [0]

    def test_wrong_message_count_raises(self):
        class BadNode(_FloodNode):
            array_program = None  # behaviour differs: keep the object loop

            def outgoing(self, round_index):
                return []  # wrong: must equal degree

        graph = cycle(4)
        instance = Instance(graph, sequential_ids(4))
        with pytest.raises(ValueError):
            SyncEngine(instance, BadNode).run()

    def test_nonconvergence_raises(self):
        class ForeverNode(_FloodNode):
            array_program = None  # behaviour differs: keep the object loop

            def outgoing(self, round_index):
                return [0] * self.degree

        graph = cycle(4)
        instance = Instance(graph, sequential_ids(4))
        with pytest.raises(RuntimeError):
            SyncEngine(instance, ForeverNode).run(max_rounds=10)

    def test_nonconvergence_carries_diagnostics(self):
        from repro.local import ConvergenceError

        class ForeverNode(_FloodNode):
            array_program = None  # behaviour differs: keep the object loop

            def outgoing(self, round_index):
                return [0] * self.degree

        graph = cycle(4)
        instance = Instance(graph, sequential_ids(4))
        with pytest.raises(ConvergenceError) as excinfo:
            SyncEngine(instance, ForeverNode).run(max_rounds=10)
        err = excinfo.value
        assert err.max_rounds == 10
        assert err.active == 4  # nobody ever halts
        assert len(err.trace) == 10  # the partial trace survives
        assert all(r.active == 4 for r in err.trace)
        assert "10 rounds" in str(err) and "4 node(s)" in str(err)

    def test_node_radius_uniform(self):
        graph = cycle(6)
        instance = Instance(graph, sequential_ids(6))
        result = SyncEngine(instance, _FloodNode).run()
        assert result.node_radius() == [result.rounds] * 6

    def test_node_radius_per_component(self):
        """A small and a large component halt at their own eccentricities.

        (Flood nodes count the whole graph as n, but a component is done
        once its own ids stop being fresh... so pass each component's
        size via per-node closures instead: each node waits for exactly
        its component's node count.)
        """
        from repro.generators import disjoint_union

        graph = disjoint_union(cycle(3), cycle(7))

        class ComponentFlood(_FloodNode):
            array_program = None  # behaviour differs: keep the object loop

            def __init__(self, v: int, instance: Instance):
                super().__init__(v, instance)
                self.n = 3 if v < 3 else 7  # component size, not graph size

        instance = Instance(graph, sequential_ids(10))
        result = SyncEngine(instance, ComponentFlood).run()
        # cycle(3) has eccentricity 1, cycle(7) eccentricity 3
        expected = [1, 1, 1, 3, 3, 3, 3, 3, 3, 3]
        assert result.node_radius() == expected
        assert result.halt_rounds == expected
        assert result.rounds == 3  # the big component halts last

    def test_late_halter_keeps_engine_running(self):
        """Early halters stop being charged while others continue."""

        class StaggeredNode:
            def __init__(self, v: int, instance: Instance):
                self.v = v
                self.degree = instance.graph.degree(v)

            def outgoing(self, round_index):
                return None if round_index >= self.v else [0] * self.degree

            def receive(self, round_index, inbox):
                pass

            def result(self):
                return self.v

        graph = cycle(5)
        instance = Instance(graph, sequential_ids(5))
        result = SyncEngine(instance, StaggeredNode).run()
        assert result.halt_rounds == [0, 1, 2, 3, 4]
        assert result.rounds == 4


class TestArrayProgramEngine:
    """The batched array path against the object loop it shadows."""

    def _both(self, graph, node_factory, max_rounds=500):
        import repro.kernels as kernels

        instance = Instance(graph, sequential_ids(graph.num_nodes))
        with kernels.active("object"):
            expected = SyncEngine(instance, node_factory).run(max_rounds)
        with kernels.active("vector"):
            got = SyncEngine(instance, node_factory).run(max_rounds)
        return expected, got

    @needs_numpy
    def test_flood_twins_match_object_loop(self):
        from repro.local.flood import MinIdFloodNode

        for graph in (cycle(10), cycle(33), PortGraph(1, [])):
            for node_factory in (_FloodNode, MinIdFloodNode):
                expected, got = self._both(graph, node_factory)
                assert got.results == expected.results
                assert got.rounds == expected.rounds
                assert got.halt_rounds == expected.halt_rounds
                assert got.trace == expected.trace

    @needs_numpy
    def test_staggered_halts_compact_the_active_set(self):
        """A twin with per-node halt rounds keeps full trace parity."""
        import numpy as np

        class StaggeredNode:
            def __init__(self, v: int, instance: Instance):
                self.v = v
                self.degree = instance.graph.degree(v)

            def outgoing(self, round_index):
                return None if round_index >= self.v else [0] * self.degree

            def receive(self, round_index, inbox):
                pass

            def result(self):
                return self.v

        class StaggeredProgram:
            def init_all(self, instance, layout):
                self.layout = layout

            def step_all(self, round_index, inbox):
                layout = self.layout
                halt = np.arange(layout.num_nodes) <= round_index
                return np.zeros(layout.total, dtype=np.int64), halt

            def results_all(self):
                return list(range(self.layout.num_nodes))

        import repro.kernels as kernels

        graph = cycle(5)
        instance = Instance(graph, sequential_ids(5))
        expected = SyncEngine(instance, StaggeredNode).run()
        with kernels.active("vector"):
            got = SyncEngine(
                instance, StaggeredNode, array_program=StaggeredProgram
            ).run()
        assert got.halt_rounds == expected.halt_rounds == [0, 1, 2, 3, 4]
        assert got.rounds == expected.rounds == 4
        assert got.trace == expected.trace
        assert got.results == expected.results

    @needs_numpy
    def test_convergence_error_parity(self):
        """Livelocks carry identical diagnostics on both paths.

        The delta-flood genuinely livelocks on a path graph: the middle
        node halts first and stops relaying, so the endpoints never
        hear the far side.  Both engines must report the same failure.
        """
        import repro.kernels as kernels

        errors = []
        for backend in ("object", "vector"):
            instance = Instance(path(9), sequential_ids(9))
            with kernels.active(backend):
                with pytest.raises(ConvergenceError) as excinfo:
                    SyncEngine(instance, _FloodNode).run(max_rounds=40)
            errors.append(excinfo.value)
        expected, got = errors
        assert got.max_rounds == expected.max_rounds == 40
        assert got.active == expected.active
        assert got.trace == expected.trace

    def test_degrades_to_object_loop_without_numpy(self, monkeypatch, caplog):
        """No numpy: the array seam falls back, warns once, same answers."""
        import logging

        import repro.kernels as kernels
        from repro.local import simulator

        monkeypatch.setattr(kernels, "HAVE_NUMPY", False)
        monkeypatch.setattr(kernels, "_WARNED_NO_NUMPY", True)
        monkeypatch.setattr(simulator, "_WARNED_NO_ARRAY_BACKEND", False)
        graph = cycle(6)
        with caplog.at_level(logging.WARNING, logger="repro.local.simulator"):
            for _ in range(2):  # the warning must not repeat
                instance = Instance(graph, sequential_ids(6))
                result = SyncEngine(instance, _FloodNode).run()
        assert result.results == [3] * 6
        assert result.rounds == 3
        degraded = [
            rec for rec in caplog.records if "degrades" in rec.getMessage()
        ]
        assert len(degraded) == 1


class TestInstance:
    def test_n_hint_defaults_to_size(self):
        graph = cycle(5)
        instance = Instance(graph, sequential_ids(5))
        assert instance.n_hint == 5

    def test_n_hint_must_cover_graph(self):
        graph = cycle(5)
        with pytest.raises(ValueError):
            Instance(graph, sequential_ids(5), n_hint=4)

    def test_id_size_mismatch(self):
        graph = cycle(5)
        with pytest.raises(ValueError):
            Instance(graph, sequential_ids(4))

    def test_require_rng(self):
        graph = cycle(5)
        instance = Instance(graph, sequential_ids(5))
        with pytest.raises(ValueError):
            instance.require_rng()
        seeded = Instance.simple(graph, seed=7)
        assert seeded.require_rng() is seeded.rng
