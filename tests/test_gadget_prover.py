"""Tests for the prover V (Section 4.5, Lemma 10) and the Psi LCL
(Section 4.4, Lemma 9)."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gadgets import (
    ERROR,
    GADOK,
    GadgetScope,
    LogGadgetFamily,
    Pointer,
    all_corruptions,
    build_gadget,
    error_radius,
    run_prover,
    verify_psi,
)
from repro.gadgets.labels import Down, LEFT, PARENT, RCHILD, RIGHT, UP
from repro.util.logmath import ceil_log2


def _run(graph, inputs, delta, n_hint=None):
    scope = GadgetScope(graph, inputs)
    component = sorted(graph.nodes())
    return scope, component, run_prover(
        scope, component, delta, n_hint or graph.num_nodes
    )


class TestValidGadgets:
    @pytest.mark.parametrize("delta,heights", [(1, 3), (2, 2), (3, 4), (2, (3, 5))])
    def test_all_ok(self, delta, heights):
        built = build_gadget(delta, heights)
        scope, component, result = _run(built.graph, built.inputs, delta)
        assert result.is_valid
        assert result.all_ok()
        assert verify_psi(scope, component, result.outputs, delta) == []

    def test_radius_is_logarithmic(self):
        family = LogGadgetFamily(3)
        for height in (3, 5, 7, 9):
            built = family.member_with_height(height)
            _, _, result = _run(built.graph, built.inputs, 3)
            used = max(result.node_radius.values())
            assert used <= error_radius(built.num_nodes)
            assert used <= 4 * ceil_log2(built.num_nodes) + 8

    def test_radius_grows_with_height(self):
        family = LogGadgetFamily(2)
        r = []
        for height in (3, 6, 9):
            built = family.member_with_height(height)
            _, _, result = _run(built.graph, built.inputs, 2)
            r.append(max(result.node_radius.values()))
        assert r[0] < r[1] < r[2]


class TestCorruptedGadgets:
    @pytest.mark.parametrize("heights", [4, (3, 5, 4)])
    def test_proof_of_error_is_psi_consistent(self, heights):
        built = build_gadget(3, heights)
        for corruption in all_corruptions(built, random.Random(2)):
            scope, component, result = _run(corruption.graph, corruption.inputs, 3)
            assert not result.is_valid, corruption.name
            # Definition 2: on invalid gadgets V uses only error labels
            assert result.error_only(), corruption.name
            violations = verify_psi(scope, component, result.outputs, 3)
            assert violations == [], (
                corruption.name,
                [str(v) for v in violations[:5]],
            )

    def test_error_nodes_marked_error(self):
        built = build_gadget(2, 3)
        corruption = all_corruptions(built, random.Random(3))[0]
        scope, component, result = _run(corruption.graph, corruption.inputs, 2)
        flagged = {v.node for v in result.violations}
        for v in flagged:
            assert result.outputs[v] == ERROR
        for v in component:
            if v not in flagged:
                assert isinstance(result.outputs[v], Pointer)

    def test_pointer_chains_reach_errors(self):
        """Follow every pointer chain; it must terminate at an Error node."""
        built = build_gadget(3, 4)
        for corruption in all_corruptions(built, random.Random(4)):
            scope, component, result = _run(corruption.graph, corruption.inputs, 3)
            for start in component:
                label = result.outputs[start]
                node = start
                steps = 0
                while isinstance(label, Pointer):
                    node = scope.follow(node, label.kind)
                    assert node is not None, corruption.name
                    label = result.outputs[node]
                    steps += 1
                    assert steps <= len(component), "pointer cycle detected"
                assert label == ERROR, corruption.name


class TestLemma9NoCheating:
    """On a valid gadget, no error labeling satisfies Psi."""

    def test_all_error_rejected(self):
        built = build_gadget(2, 3)
        scope = GadgetScope(built.graph, built.inputs)
        component = sorted(built.graph.nodes())
        outputs = {v: ERROR for v in component}
        assert verify_psi(scope, component, outputs, 2)

    def test_all_parent_pointers_rejected(self):
        built = build_gadget(2, 3)
        scope = GadgetScope(built.graph, built.inputs)
        component = sorted(built.graph.nodes())
        outputs = {}
        for v in component:
            if scope.follow(v, PARENT) is not None:
                outputs[v] = Pointer(PARENT)
            elif scope.follow(v, UP) is not None:
                outputs[v] = Pointer(UP)
            else:
                outputs[v] = Pointer(Down(1))
        assert verify_psi(scope, component, outputs, 2)

    @given(st.integers(0, 10**9))
    @settings(max_examples=60, deadline=None)
    def test_random_error_labelings_rejected(self, seed):
        rng = random.Random(seed)
        built = build_gadget(2, 3)
        scope = GadgetScope(built.graph, built.inputs)
        component = sorted(built.graph.nodes())
        pool = [
            ERROR,
            Pointer(RIGHT),
            Pointer(LEFT),
            Pointer(PARENT),
            Pointer(RCHILD),
            Pointer(UP),
            Pointer(Down(1)),
            Pointer(Down(2)),
        ]
        outputs = {v: rng.choice(pool) for v in component}
        assert verify_psi(scope, component, outputs, 2), (
            "an adversarial error labeling was accepted on a valid gadget"
        )

    @given(st.integers(0, 10**9))
    @settings(max_examples=40, deadline=None)
    def test_single_liar_rejected(self, seed):
        """All-Ok except one node claiming an error is also rejected."""
        rng = random.Random(seed)
        built = build_gadget(2, 4)
        scope = GadgetScope(built.graph, built.inputs)
        component = sorted(built.graph.nodes())
        outputs = {v: GADOK for v in component}
        liar = rng.choice(component)
        outputs[liar] = rng.choice(
            [ERROR, Pointer(RIGHT), Pointer(LEFT), Pointer(PARENT)]
        )
        assert verify_psi(scope, component, outputs, 2)

    def test_ok_everywhere_accepted(self):
        built = build_gadget(2, 4)
        scope = GadgetScope(built.graph, built.inputs)
        component = sorted(built.graph.nodes())
        outputs = {v: GADOK for v in component}
        assert verify_psi(scope, component, outputs, 2) == []


class TestPsiOnCorrupted:
    def test_silence_rejected_on_corruption(self):
        """Claiming GadOk everywhere on a broken gadget violates Psi."""
        built = build_gadget(3, 4)
        for corruption in all_corruptions(built, random.Random(5)):
            scope = GadgetScope(corruption.graph, corruption.inputs)
            component = sorted(corruption.graph.nodes())
            outputs = {v: GADOK for v in component}
            assert verify_psi(scope, component, outputs, 3), corruption.name
