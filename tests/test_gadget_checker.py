"""Tests for the structural checker (Sections 4.2/4.3, Lemmas 7 and 8)."""

from __future__ import annotations

import random

import pytest

from repro.gadgets import (
    GadgetScope,
    all_corruptions,
    build_gadget,
    check_component,
    component_is_valid,
    corrupt,
)
from repro.gadgets.corruptions import CORRUPTIONS


def _scope(graph, inputs):
    return GadgetScope(graph, inputs)


class TestValidGadgetsAccepted:
    @pytest.mark.parametrize(
        "delta,heights",
        [
            (1, 2),
            (2, 2),
            (2, 4),
            (3, 3),
            (3, 5),
            (4, 3),
            (3, (2, 4, 3)),
            (2, (5, 2)),
        ],
    )
    def test_no_violations(self, delta, heights):
        built = build_gadget(delta, heights)
        scope = _scope(built.graph, built.inputs)
        component = sorted(built.graph.nodes())
        violations = check_component(scope, component, delta)
        assert violations == [], [str(v) for v in violations[:5]]
        assert component_is_valid(scope, component, delta)


class TestCorruptionsRejected:
    @pytest.mark.parametrize("name", sorted(CORRUPTIONS))
    def test_each_corruption_flagged(self, name):
        built = build_gadget(3, 4)
        corruption = corrupt(built, name)
        scope = _scope(corruption.graph, corruption.inputs)
        component = sorted(corruption.graph.nodes())
        violations = check_component(scope, component, 3)
        assert violations, f"{name} was not detected"

    def test_expected_codes(self):
        built = build_gadget(3, 4)
        expectations = {
            "wrong-index": "1c",
            "fake-port": "3h",
            "missing-port": "3h",
            "color-clash": "1a",
            "color-replication": "1a",
            "swapped-children": "2c",
            "dropped-horizontal": "3a",
        }
        for name, code in expectations.items():
            corruption = corrupt(built, name)
            scope = _scope(corruption.graph, corruption.inputs)
            codes = {
                v.code
                for v in check_component(scope, sorted(corruption.graph.nodes()), 3)
            }
            assert code in codes, f"{name}: expected {code}, got {codes}"

    def test_wrong_delta_rejects_center(self):
        built = build_gadget(3, 3)
        scope = _scope(built.graph, built.inputs)
        component = sorted(built.graph.nodes())
        violations = check_component(scope, component, 4)
        assert any(v.code == "c2a" for v in violations)

    def test_garbage_inputs_flagged(self):
        from repro.lcl import Labeling

        built = build_gadget(2, 2)
        empty = Labeling(built.graph)
        scope = _scope(built.graph, empty)
        violations = check_component(scope, sorted(built.graph.nodes()), 2)
        assert all(v.code == "alpha" for v in violations)
        assert len(violations) == built.num_nodes

    def test_violation_str(self):
        built = build_gadget(2, 2)
        corruption = corrupt(built, "missing-port")
        scope = _scope(corruption.graph, corruption.inputs)
        violations = check_component(scope, sorted(corruption.graph.nodes()), 2)
        assert "3h" in str(violations[0])


class TestCorruptionLocality:
    """Corruptions are detected *near* the tampering: the checker radius
    is constant, so flagged nodes sit within distance 4 of the change."""

    def test_flagged_nodes_near_corruption(self):
        from repro.local import bfs_distances

        built = build_gadget(3, 5)
        for corruption in all_corruptions(built, random.Random(1)):
            scope = _scope(corruption.graph, corruption.inputs)
            component = sorted(corruption.graph.nodes())
            flagged = {v.node for v in check_component(scope, component, 3)}
            assert flagged
            # all flagged nodes are within distance 4 of each other's
            # neighborhoods; in particular the flagged set is small
            assert len(flagged) <= 12, corruption.name
