"""Tests for labelings, ne-LCL problems, and the verifier."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.generators import cycle, path
from repro.lcl import (
    BLANK,
    EMPTY,
    EdgeConfiguration,
    Labeling,
    LabelSet,
    NeLCL,
    NodeConfiguration,
    verify,
)
from repro.local import HalfEdge, PortGraph
from tests.conftest import build_multigraph


class TestLabelSet:
    def test_membership(self):
        colors = LabelSet("colors", {"red", "blue"})
        assert "red" in colors
        assert "green" not in colors
        assert len(colors) == 2

    def test_open_set_accepts_everything(self):
        anything = LabelSet.open_set("anything")
        assert ("weird", 3, EMPTY) in anything

    def test_closed_empty_rejected(self):
        with pytest.raises(ValueError):
            LabelSet("empty", ())

    def test_sentinels_are_singletons(self):
        import copy

        assert copy.deepcopy(EMPTY) is EMPTY
        assert copy.copy(BLANK) is BLANK
        assert repr(EMPTY) == "EMPTY"


class TestLabeling:
    def test_defaults_to_empty(self):
        graph = cycle(4)
        labeling = Labeling(graph)
        assert labeling.node(0) is EMPTY
        assert labeling.edge(0) is EMPTY
        assert labeling.half(HalfEdge(0, 0)) is EMPTY

    def test_set_and_get(self):
        graph = cycle(4)
        labeling = Labeling(graph)
        labeling.set_node(1, "a")
        labeling.set_edge(2, "b")
        labeling.set_half_at(3, 0, "c")
        assert labeling.node(1) == "a"
        assert labeling.edge(2) == "b"
        assert labeling.half_at(3, 0) == "c"

    def test_out_of_range_rejected(self):
        graph = cycle(4)
        labeling = Labeling(graph)
        with pytest.raises(KeyError):
            labeling.set_node(9, "x")
        with pytest.raises(KeyError):
            labeling.set_edge(9, "x")
        with pytest.raises(KeyError):
            labeling.set_half(HalfEdge(0, 5), "x")

    def test_fill_and_copy_independent(self):
        graph = cycle(3)
        labeling = Labeling(graph).fill_nodes("x").fill_edges("y").fill_halves("z")
        clone = labeling.copy()
        clone.set_node(0, "changed")
        assert labeling.node(0) == "x"
        assert clone.node(0) == "changed"

    def test_equality_is_structural(self):
        graph = cycle(3)
        a = Labeling(graph).fill_nodes("x")
        b = Labeling(graph).fill_nodes("x")
        assert a == b
        b.set_node(2, "y")
        assert a != b

    def test_items_iteration(self):
        graph = path(2)
        labeling = Labeling(graph)
        labeling.set_node(0, "n")
        labeling.set_half_at(1, 0, "h")
        kinds = [kind for kind, _, _ in labeling.items()]
        assert kinds == ["node", "half"]


def _all_equal_problem() -> NeLCL:
    """Toy ne-LCL: every node output must equal all incident half outputs."""

    def node_ok(cfg: NodeConfiguration) -> bool:
        return all(h == cfg.node_output for h in cfg.half_outputs)

    def edge_ok(cfg: EdgeConfiguration) -> bool:
        return cfg.half_outputs[0] == cfg.half_outputs[1]

    return NeLCL(
        name="all-equal",
        node_constraint=node_ok,
        edge_constraint=edge_ok,
        node_outputs=LabelSet("bits", {0, 1}),
        half_outputs=LabelSet("bits", {0, 1}),
    )


class TestVerifier:
    def test_accepts_valid_solution(self):
        graph = cycle(5)
        problem = _all_equal_problem()
        outputs = Labeling(graph).fill_nodes(1).fill_halves(1)
        verdict = verify(problem, graph, Labeling(graph), outputs)
        assert verdict.ok
        assert verdict.summary() == "accepted"

    def test_rejects_and_pinpoints_node(self):
        graph = cycle(5)
        problem = _all_equal_problem()
        outputs = Labeling(graph).fill_nodes(1).fill_halves(1)
        outputs.set_half_at(2, 0, 0)
        verdict = verify(problem, graph, Labeling(graph), outputs)
        assert not verdict.ok
        kinds = {v.kind for v in verdict.violations}
        assert "node" in kinds and "edge" in kinds
        assert any(v.where == 2 for v in verdict.violations if v.kind == "node")

    def test_domain_violation_reported(self):
        graph = cycle(3)
        problem = _all_equal_problem()
        outputs = Labeling(graph).fill_nodes(7).fill_halves(7)
        verdict = verify(problem, graph, Labeling(graph), outputs)
        assert any(v.kind == "domain" for v in verdict.violations)

    def test_asymmetric_constraint_flagged(self):
        def node_ok(cfg):
            return True

        def biased_edge(cfg: EdgeConfiguration) -> bool:
            return cfg.half_outputs[0] <= cfg.half_outputs[1]

        problem = NeLCL("biased", node_ok, biased_edge)
        graph = path(2)
        outputs = Labeling(graph)
        outputs.set_half_at(0, 0, 0)
        outputs.set_half_at(1, 0, 1)
        verdict = verify(problem, graph, Labeling(graph), outputs)
        assert not verdict.ok
        assert "asymmetric" in verdict.violations[0].message

    def test_max_violations_truncates(self):
        graph = cycle(10)
        problem = _all_equal_problem()
        outputs = Labeling(graph)  # everything EMPTY: all domains fail
        verdict = verify(problem, graph, Labeling(graph), outputs, max_violations=3)
        assert not verdict.ok

    def test_self_loop_configuration(self):
        graph = build_multigraph(1, [(0, 0)])
        problem = _all_equal_problem()
        outputs = Labeling(graph).fill_nodes(1).fill_halves(1)
        assert verify(problem, graph, Labeling(graph), outputs).ok
        outputs.set_half_at(0, 1, 0)
        assert not verify(problem, graph, Labeling(graph), outputs).ok

    def test_input_domain_checking_optional(self):
        graph = path(2)
        problem = _all_equal_problem()
        problem.node_inputs = LabelSet("ins", {"valid"})
        inputs = Labeling(graph).fill_nodes("invalid")
        outputs = Labeling(graph).fill_nodes(1).fill_halves(1)
        assert verify(problem, graph, inputs, outputs).ok
        verdict = verify(problem, graph, inputs, outputs, check_input_domain=True)
        assert not verdict.ok

    @given(st.integers(min_value=3, max_value=12), st.integers(0, 1))
    @settings(max_examples=20, deadline=None)
    def test_uniform_labelings_always_accepted(self, n, bit):
        graph = cycle(n)
        problem = _all_equal_problem()
        outputs = Labeling(graph).fill_nodes(bit).fill_halves(bit)
        assert verify(problem, graph, Labeling(graph), outputs).ok
