"""The base separation: sinkless orientation, deterministic vs randomized.

The deterministic solver scans Theta(log n) far (until a cycle closes
in its view); the randomized one flips coins and repairs the few
residual sinks within Theta(log log n).  This demo runs both on random
cubic graphs of growing size and prints the measured round counts —
the paper's Figure 1 sinkless-orientation dot, live.

Run:  python examples/sinkless_orientation_demo.py
"""

from __future__ import annotations

from repro.analysis import render_table
from repro.generators.hard import cubic_instance
from repro.lcl import Labeling, verify
from repro.problems import (
    DeterministicSinklessSolver,
    RandomizedSinklessSolver,
    SinklessOrientation,
)


def main() -> None:
    problem = SinklessOrientation().problem()
    rows = []
    for exponent in range(6, 13):
        n = 2**exponent
        instance = cubic_instance(n, seed=0)
        det = DeterministicSinklessSolver().solve(instance)
        rand = RandomizedSinklessSolver().solve(instance)
        for result in (det, rand):
            verdict = verify(
                problem, instance.graph, Labeling(instance.graph), result.outputs
            )
            assert verdict.ok, verdict.summary()
        rows.append([n, det.rounds, rand.rounds, round(det.rounds / rand.rounds, 2)])
    print(
        render_table(
            ["n", "deterministic", "randomized", "gap"],
            rows,
            title=(
                "sinkless orientation on random cubic graphs\n"
                "paper: det Theta(log n) vs rand Theta(log log n)"
            ),
        )
    )


if __name__ == "__main__":
    main()
