"""Quickstart: define an LCL instance, run a solver, verify locally.

Solves 3-coloring on a cycle with the deterministic Theta(log* n)
Linial/Cole-Vishkin reduction and checks the output with the
distributed ne-LCL verifier.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import random

from repro.generators import cycle
from repro.lcl import Labeling, verify
from repro.local import Instance
from repro.local.identifiers import random_ids
from repro.problems import CycleColoringSolver, ThreeColoringCycles


def main() -> None:
    n = 64
    graph = cycle(n)
    ids = random_ids(n, random.Random(0))
    instance = Instance(graph, ids)

    solver = CycleColoringSolver()
    result = solver.solve(instance)

    problem = ThreeColoringCycles().problem()
    verdict = verify(problem, graph, Labeling(graph), result.outputs)

    colors = [result.outputs.node(v) for v in graph.nodes()]
    print(f"3-coloring a {n}-cycle with {solver.name}")
    print(f"  rounds used : {result.rounds}")
    print(f"  colors      : {colors[:16]} ...")
    print(f"  verifier    : {verdict.summary()}")
    assert verdict.ok


if __name__ == "__main__":
    main()
