"""Engine demo: a multi-core, cached sweep of the sinkless separation.

Runs the deterministic and randomized sinkless-orientation sweeps
twice through ``repro.engine`` — first cold on a worker pool, then
again against the now-warm trial cache — and prints the speedup the
cache buys.

Run:  python examples/engine_demo.py
"""

from __future__ import annotations

import tempfile

from repro.engine import TrialCache, build_experiment, run_experiment
from repro.engine.cli import format_report


def run_all(specs, workers, cache):
    return [run_experiment(spec, workers=workers, cache=cache) for spec in specs]


def main() -> None:
    specs = build_experiment("sinkless", max_n=512, seed_count=2)
    with tempfile.TemporaryDirectory(prefix="repro-engine-demo-") as cache_dir:
        cache = TrialCache(cache_dir)

        cold = run_all(specs, workers=2, cache=cache)
        warm = run_all(specs, workers=2, cache=cache)

    print(format_report(cold))
    print()
    cold_s = sum(rep.elapsed for rep in cold)
    warm_s = sum(rep.elapsed for rep in warm)
    hits = sum(rep.cache_hits for rep in warm)
    total = sum(rep.trials_total for rep in warm)
    print(f"cold run : {cold_s:.3f}s on 2 workers ({total} trials computed)")
    print(f"warm run : {warm_s:.3f}s ({hits}/{total} trials replayed from cache)")
    if warm_s > 0:
        print(f"cache speedup: {cold_s / warm_s:.1f}x")
    for cold_rep, warm_rep in zip(cold, warm):
        assert cold_rep.sweep == warm_rep.sweep, "cache must replay bit-identically"
    print("cold and warm sweeps are bit-identical")


if __name__ == "__main__":
    main()
