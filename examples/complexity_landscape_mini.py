"""A miniature Figure 1: measure the landscape on your laptop.

Sweeps the implemented problems over modest sizes and prints the
best-fit growth class next to the paper's placement.  The full-size
version lives in benchmarks/bench_figure1_landscape.py.

Run:  python examples/complexity_landscape_mini.py
"""

from __future__ import annotations

from repro.analysis import measure_row, render_landscape
from repro.core import build_family
from repro.generators.hard import cubic_instance, padded_hard_instance
from repro.problems import DeterministicSinklessSolver, RandomizedSinklessSolver

NS = [64, 128, 256, 512, 1024, 2048]


def main() -> None:
    rows = [
        measure_row(
            "sinkless orientation",
            "Theta(log n)",
            "Theta(loglog n)",
            DeterministicSinklessSolver(),
            RandomizedSinklessSolver(),
            cubic_instance,
            NS,
            seeds=(0,),
            candidates=["1", "log*", "loglog", "log"],
        )
    ]
    pi2 = build_family(2)[1]
    rows.append(
        measure_row(
            "Pi_2 (the paper's new LCL)",
            "Theta(log^2 n)",
            "Theta(log n loglog n)",
            pi2.det_solver,
            pi2.rand_solver,
            lambda n, s: padded_hard_instance(pi2, n, s),
            [300, 700, 1600, 3600, 8000],
            seeds=(0,),
            candidates=["loglog", "log", "log loglog", "log^2"],
        )
    )
    print(render_landscape(rows))
    print(
        "\nReading: randomness helps sinkless orientation exponentially\n"
        "(log -> loglog) but helps Pi_2 only by one log factor\n"
        "(log^2 -> log loglog) - the paper's subexponential separation."
    )


if __name__ == "__main__":
    main()
