"""Locally checkable proofs of error (Sections 4.4-4.6).

Corrupts a gadget, runs the prover V, and prints what each node
outputs: Error at the nodes whose constant-radius check fails, error
pointers everywhere else, forming chains that the Psi verifier accepts
— and that no one can fabricate on a valid gadget.  Finally compiles
the node-edge-checkable version (Figures 7/8).

Run:  python examples/error_proofs_demo.py
"""

from __future__ import annotations

from collections import Counter

from repro.gadgets import (
    ERROR,
    GADOK,
    GadgetScope,
    Pointer,
    build_gadget,
    corrupt,
    run_prover,
    verify_psi,
)
from repro.gadgets.ne_encoding import compile_ne_proof, verify_ne_proof


def main() -> None:
    built = build_gadget(3, 4)
    print(f"valid gadget: delta=3, height=4, {built.num_nodes} nodes")
    scope = GadgetScope(built.graph, built.inputs)
    component = sorted(built.graph.nodes())
    result = run_prover(scope, component, 3, built.num_nodes)
    print(f"  prover on the valid gadget: all GadOk = {result.all_ok()}")

    for name in ("swapped-children", "color-clash", "detached-subgadget"):
        corruption = corrupt(built, name)
        scope = GadgetScope(corruption.graph, corruption.inputs)
        component = sorted(corruption.graph.nodes())
        result = run_prover(scope, component, 3, corruption.graph.num_nodes)
        counts = Counter(
            "Error" if label == ERROR
            else f"ptr:{label.kind}" if isinstance(label, Pointer)
            else "GadOk"
            for label in result.outputs.values()
        )
        psi_violations = verify_psi(scope, component, result.outputs, 3)
        node_out, half_out = compile_ne_proof(scope, component, result.outputs)
        ne_violations = verify_ne_proof(scope, component, node_out, half_out)
        witnesses = sum(1 for o in node_out.values() if o.dup_color is not None)
        chains = len({t.color for o in node_out.values() for t in o.tokens})
        print(f"\ncorruption: {name} ({corruption.description})")
        print(f"  outputs        : {dict(counts)}")
        print(f"  Psi verifier   : {'accepted' if not psi_violations else 'REJECTED'}")
        print(
            f"  ne proof       : {'accepted' if not ne_violations else 'REJECTED'}"
            f" (Fig.7 witnesses: {witnesses}, Fig.8 chains: {chains})"
        )
        assert not psi_violations and not ne_violations
        assert result.error_only()


if __name__ == "__main__":
    main()
