"""The paper's construction end to end: build Pi_2 and solve it.

Pads a small cubic base graph with (log, 3)-gadgets (Definition 3),
solves the padded problem Pi' with the generic Lemma 4 algorithm on top
of both sinkless-orientation solvers, verifies the outputs against the
Section 3.3 constraints, and shows the virtual-graph contraction the
solver discovered.

Run:  python examples/padded_lcl_demo.py
"""

from __future__ import annotations

import random

from repro.analysis import render_table
from repro.core import PaddedProblem, PaddedSolver, decompose, pad_graph
from repro.gadgets import LogGadgetFamily, build_gadget
from repro.generators import random_regular
from repro.local import Instance
from repro.local.identifiers import sequential_ids
from repro.problems import (
    DeterministicSinklessSolver,
    RandomizedSinklessSolver,
    SinklessOrientation,
)
from repro.util.rng import NodeRng


def main() -> None:
    base = random_regular(10, 3, random.Random(1))
    height = 4
    gadgets = [build_gadget(3, height) for _ in base.nodes()]
    padded = pad_graph(base, gadgets)
    print(
        f"padded a {base.num_nodes}-node cubic graph with height-{height} "
        f"gadgets -> {padded.graph.num_nodes} nodes "
        f"({padded.graph.num_edges} edges, {len(padded.port_edges)} port edges)"
    )

    family = LogGadgetFamily(3)
    problem = PaddedProblem(SinklessOrientation().problem(), family)
    instance = Instance(
        padded.graph,
        sequential_ids(padded.graph.num_nodes),
        padded.inputs,
        None,
        NodeRng(7),
    )

    decomposition = decompose(
        padded.graph, padded.inputs, family, instance.ids, instance.n_hint
    )
    virtual = decomposition.virtual
    print(
        f"contraction: {virtual.num_real()} valid gadgets -> virtual graph "
        f"with {virtual.graph.num_edges} edges (the base graph, recovered)"
    )

    rows = []
    for base_solver in (DeterministicSinklessSolver(), RandomizedSinklessSolver()):
        solver = PaddedSolver(problem, base_solver)
        result = solver.solve(instance)
        verdict = problem.verify(padded.graph, padded.inputs, result.outputs)
        assert verdict.ok, verdict.summary()
        rows.append(
            [
                solver.name,
                result.extras["base_rounds"],
                result.rounds,
                round(result.rounds / max(result.extras["base_rounds"], 1), 1),
                verdict.summary(),
            ]
        )
    print(
        render_table(
            ["solver", "base rounds", "Pi' rounds", "overhead", "verifier"],
            rows,
            title=(
                "Lemma 4: solving Pi' costs base-rounds x gadget-depth "
                f"(port distance 2h = {2 * height})"
            ),
        )
    )


if __name__ == "__main__":
    main()
